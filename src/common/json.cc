#include "common/json.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/strings.hh"

namespace bsim {

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

void
JsonWriter::separator()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already emitted "k":
    }
    if (!stack_.empty()) {
        if (hasElement_.back())
            out_ += ',';
        hasElement_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separator();
    started_ = true;
    out_ += '{';
    stack_.push_back(Ctx::Object);
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bsim_assert(!stack_.empty() && stack_.back() == Ctx::Object,
                "endObject outside an object");
    out_ += '}';
    stack_.pop_back();
    hasElement_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separator();
    started_ = true;
    out_ += '[';
    stack_.push_back(Ctx::Array);
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bsim_assert(!stack_.empty() && stack_.back() == Ctx::Array,
                "endArray outside an array");
    out_ += ']';
    stack_.pop_back();
    hasElement_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    bsim_assert(!stack_.empty() && stack_.back() == Ctx::Object,
                "key outside an object");
    bsim_assert(!pendingKey_, "two keys in a row");
    if (hasElement_.back())
        out_ += ',';
    hasElement_.back() = true;
    out_ += '"' + escape(k) + "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separator();
    started_ = true;
    out_ += '"' + escape(v) + '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separator();
    started_ = true;
    if (std::isfinite(v)) {
        out_ += strprintf("%.10g", v);
    } else {
        // JSON has no NaN/Inf; emit null like most serializers.
        out_ += "null";
    }
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separator();
    started_ = true;
    out_ += strprintf("%llu", static_cast<unsigned long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separator();
    started_ = true;
    out_ += strprintf("%lld", static_cast<long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(unsigned v)
{
    return value(static_cast<std::uint64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    separator();
    started_ = true;
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separator();
    started_ = true;
    out_ += "null";
    return *this;
}

JsonWriter &
JsonWriter::raw(const std::string &token)
{
    separator();
    started_ = true;
    out_ += token;
    return *this;
}

std::string
JsonWriter::str() const
{
    bsim_assert(stack_.empty(), "unclosed JSON container");
    return out_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

const char *
JsonValue::kindName(Kind k)
{
    switch (k) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return "bool";
      case Kind::Number:
        return "number";
      case Kind::String:
        return "string";
      case Kind::Array:
        return "array";
      case Kind::Object:
        return "object";
    }
    return "?";
}

namespace {

void
dumpValue(const JsonValue &v, JsonWriter &w)
{
    switch (v.kind) {
      case JsonValue::Kind::Null:
        w.null();
        break;
      case JsonValue::Kind::Bool:
        w.value(v.boolean);
        break;
      case JsonValue::Kind::Number:
        // Re-emit the source lexeme so integers survive unchanged.
        if (!v.string.empty())
            w.raw(v.string);
        else
            w.value(v.number);
        break;
      case JsonValue::Kind::String:
        w.value(v.string);
        break;
      case JsonValue::Kind::Array:
        w.beginArray();
        for (const JsonValue &e : v.array)
            dumpValue(e, w);
        w.endArray();
        break;
      case JsonValue::Kind::Object:
        w.beginObject();
        for (const auto &[k, e] : v.object) {
            w.key(k);
            dumpValue(e, w);
        }
        w.endObject();
        break;
    }
}

/** Recursive-descent RFC 8259 parser over a string_view-ish cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string *error)
    {
        JsonValue v;
        if (!parseValue(v, 0) || (skipWs(), pos_ != text_.size())) {
            if (ok_)
                fail("trailing characters after the document");
            if (error)
                *error = error_;
            return std::nullopt;
        }
        return v;
    }

  private:
    static constexpr std::size_t kMaxDepth = 128;

    bool
    fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = strprintf("offset %zu: %s", pos_, why.c_str());
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", 4);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseArray(JsonValue &out, std::size_t depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue elem;
            if (!parseValue(elem, depth + 1))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(JsonValue &out, std::size_t depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key string");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            out.object.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    hex4(std::uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + i];
            std::uint32_t d;
            if (c >= '0' && c <= '9')
                d = c - '0';
            else if (c >= 'a' && c <= 'f')
                d = 10 + c - 'a';
            else if (c >= 'A' && c <= 'F')
                d = 10 + c - 'A';
            else
                return fail("bad hex digit in \\u escape");
            out = out << 4 | d;
        }
        pos_ += 4;
        return true;
    }

    void
    appendUtf8(std::string &s, std::uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xc0 | cp >> 6);
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xe0 | cp >> 12);
            s += static_cast<char>(0x80 | (cp >> 6 & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            s += static_cast<char>(0xf0 | cp >> 18);
            s += static_cast<char>(0x80 | (cp >> 12 & 0x3f));
            s += static_cast<char>(0x80 | (cp >> 6 & 0x3f));
            s += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        for (;;) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const unsigned char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("truncated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                std::uint32_t cp;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // UTF-16 surrogate pair.
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail("unpaired UTF-16 surrogate");
                    pos_ += 2;
                    std::uint32_t lo;
                    if (!hex4(lo))
                        return false;
                    if (lo < 0xdc00 || lo > 0xdfff)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape sequence");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        const auto digits = [&] {
            const std::size_t d = pos_;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
            return pos_ > d;
        };
        // No leading zeros: "0" alone or 1-9 followed by digits.
        if (pos_ < text_.size() && text_[pos_] == '0') {
            ++pos_;
        } else if (!digits()) {
            return fail("malformed number");
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (!digits())
                return fail("malformed number (no fraction digits)");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (!digits())
                return fail("malformed number (no exponent digits)");
        }
        out.kind = JsonValue::Kind::Number;
        out.string = text_.substr(start, pos_ - start);
        out.number = std::strtod(out.string.c_str(), nullptr);
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

} // namespace

std::string
JsonValue::dump() const
{
    JsonWriter w;
    dumpValue(*this, w);
    return w.str();
}

std::optional<JsonValue>
parseJson(const std::string &text, std::string *error)
{
    return Parser(text).run(error);
}

} // namespace bsim
