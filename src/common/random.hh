/**
 * @file
 * Deterministic pseudo-random number generation and the distributions the
 * workload generators need (uniform, geometric, Zipf, Gaussian-ish).
 *
 * All simulator randomness flows through Rng so that every experiment is
 * reproducible from a single 64-bit seed.
 */

#ifndef BSIM_COMMON_RANDOM_HH
#define BSIM_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace bsim {

/**
 * xoshiro256** generator. Small, fast, and deterministic across platforms
 * (unlike std::mt19937 + std:: distributions whose outputs are not
 * specified identically everywhere).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Geometric draw: number of failures before first success with success
     * probability @p p in (0, 1]. Capped at @p cap.
     */
    std::uint64_t nextGeometric(double p, std::uint64_t cap = 1u << 20);

    /** Split off an independent generator (for sub-streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf-distributed integer sampler over [0, n).
 *
 * Rank r is drawn with probability proportional to 1 / (r + 1)^alpha.
 * Uses an inverse-CDF table built once; sampling is O(log n).
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double alpha);

    std::size_t operator()(Rng &rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace bsim

#endif // BSIM_COMMON_RANDOM_HH
