/**
 * @file
 * A minimal JSON *writer* (no parsing) for structured statistics export:
 * machine-readable output from the CLI and the experiment runners so
 * downstream analysis (plotting, regression tracking) does not have to
 * scrape ASCII tables.
 *
 * Usage:
 *     JsonWriter j;
 *     j.beginObject();
 *     j.key("missRate").value(0.042);
 *     j.key("config").beginObject();
 *     j.key("ways").value(8);
 *     j.endObject();
 *     j.endObject();
 *     std::string out = j.str();
 */

#ifndef BSIM_COMMON_JSON_HH
#define BSIM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bsim {

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key (must be inside an object). */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** The serialized document. All containers must be closed. */
    std::string str() const;

    /** True when every beginObject/beginArray has been closed. */
    bool complete() const { return stack_.empty() && started_; }

    /** Escape a string per RFC 8259 (exposed for tests). */
    static std::string escape(const std::string &s);

  private:
    enum class Ctx : std::uint8_t { Object, Array };
    void separator();

    std::string out_;
    std::vector<Ctx> stack_;
    /** Whether the current container already holds an element. */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
    bool started_ = false;
};

} // namespace bsim

#endif // BSIM_COMMON_JSON_HH
