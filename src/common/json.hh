/**
 * @file
 * Minimal JSON support for structured statistics export: a writer for
 * machine-readable output from the CLI and the experiment runners, and a
 * small strict parser so tooling (the BENCH_perf.json perf-trajectory
 * reporter and its lint) can read records back without scraping ASCII
 * tables. Parse-then-serialize round-trips are pinned by tests/test_json
 * and tests/test_bench_json.
 */

#ifndef BSIM_COMMON_JSON_HH
#define BSIM_COMMON_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace bsim {

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key (must be inside an object). */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(unsigned v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /**
     * Emit an already-serialized scalar token verbatim (no quoting or
     * escaping). Used by JsonValue::dump() to re-emit number lexemes
     * unchanged; the caller is responsible for token validity.
     */
    JsonWriter &raw(const std::string &token);

    /** Shorthand: key + value. */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** The serialized document. All containers must be closed. */
    std::string str() const;

    /** True when every beginObject/beginArray has been closed. */
    bool complete() const { return stack_.empty() && started_; }

    /** Escape a string per RFC 8259 (exposed for tests). */
    static std::string escape(const std::string &s);

  private:
    enum class Ctx : std::uint8_t { Object, Array };
    void separator();

    std::string out_;
    std::vector<Ctx> stack_;
    /** Whether the current container already holds an element. */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
    bool started_ = false;
};

/**
 * A parsed JSON document node. Numbers are stored as double (plus the
 * original lexeme in `string`, so integer-valued counters survive a
 * round-trip verbatim); object members keep their insertion order.
 */
struct JsonValue
{
    enum class Kind : std::uint8_t {
        Null, Bool, Number, String, Array, Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String payload; for numbers, the verbatim source lexeme. */
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Re-serialize through JsonWriter (canonical, no whitespace). */
    std::string dump() const;

    static const char *kindName(Kind k);
};

/**
 * Strict RFC 8259 parser (no comments, no trailing commas, exactly one
 * top-level value). Returns nullopt and fills @p error (if non-null)
 * with a "offset N: reason" message on malformed input.
 */
std::optional<JsonValue> parseJson(const std::string &text,
                                   std::string *error = nullptr);

} // namespace bsim

#endif // BSIM_COMMON_JSON_HH
