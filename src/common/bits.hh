/**
 * @file
 * Bit-manipulation helpers used by the cache decoders and geometry code.
 */

#ifndef BSIM_COMMON_BITS_HH
#define BSIM_COMMON_BITS_HH

#include <cassert>
#include <cstdint>

#include "common/types.hh"

namespace bsim {

/** True iff @p v is a power of two (zero is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Floor of log2. @p v must be non-zero.
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2. @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** A mask with the low @p nbits bits set. nbits may be 0..64. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << nbits) - 1);
}

/**
 * Extract the bit field [first, first + nbits) of @p v
 * (first = bit index of the least significant bit of the field).
 */
constexpr std::uint64_t
bitsRange(std::uint64_t v, unsigned first, unsigned nbits)
{
    return (v >> first) & mask(nbits);
}

/** Extract a single bit. */
constexpr bool
bit(std::uint64_t v, unsigned pos)
{
    return (v >> pos) & 1;
}

/**
 * Insert value @p field into bits [first, first + nbits) of @p v and
 * return the result.
 */
constexpr std::uint64_t
insertBits(std::uint64_t v, unsigned first, unsigned nbits,
           std::uint64_t field)
{
    const std::uint64_t m = mask(nbits) << first;
    return (v & ~m) | ((field << first) & m);
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t v)
{
    unsigned c = 0;
    while (v) {
        v &= v - 1;
        ++c;
    }
    return c;
}

/** XOR-fold @p v down to @p nbits bits (used by skewed index functions). */
constexpr std::uint64_t
xorFold(std::uint64_t v, unsigned nbits)
{
    assert(nbits > 0 && nbits < 64);
    std::uint64_t r = 0;
    while (v) {
        r ^= v & mask(nbits);
        v >>= nbits;
    }
    return r;
}

/** Reverse the low @p nbits bits of @p v. */
constexpr std::uint64_t
reverseBits(std::uint64_t v, unsigned nbits)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < nbits; ++i)
        if (bit(v, i))
            r |= std::uint64_t{1} << (nbits - 1 - i);
    return r;
}

} // namespace bsim

#endif // BSIM_COMMON_BITS_HH
