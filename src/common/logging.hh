/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  - a simulator bug; aborts.
 * fatal()  - a user/configuration error; exits with status 1.
 * warn()   - suspicious but non-fatal condition.
 * inform() - status message.
 */

#ifndef BSIM_COMMON_LOGGING_HH
#define BSIM_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace bsim {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * What bsim_fatal throws when fatal-throw mode is on (see
 * setFatalThrows). what() carries the message without the file:line
 * suffix, so it can be surfaced verbatim to an RPC client.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Switch bsim_fatal from exit(1) to throwing FatalError, process-wide.
 * One-shot binaries keep the default (a configuration error ends the
 * run), but a resident server (serve/) must survive a bad request: it
 * enables this once at startup and converts the thrown FatalError into
 * a typed RPC error response. Process-wide rather than thread-local
 * because request work fans out onto sweep-pool worker threads, which
 * already capture per-job exceptions.
 */
void setFatalThrows(bool enable);
bool fatalThrows();

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace bsim

#define bsim_panic(...) \
    ::bsim::panicImpl(__FILE__, __LINE__, ::bsim::detail::concat(__VA_ARGS__))
#define bsim_fatal(...) \
    ::bsim::fatalImpl(__FILE__, __LINE__, ::bsim::detail::concat(__VA_ARGS__))
#define bsim_warn(...) \
    ::bsim::warnImpl(::bsim::detail::concat(__VA_ARGS__))
#define bsim_inform(...) \
    ::bsim::informImpl(::bsim::detail::concat(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define bsim_assert(cond, ...)                                            \
    do {                                                                  \
        if (!(cond))                                                      \
            bsim_panic("assertion '" #cond "' failed. " __VA_ARGS__);    \
    } while (0)

#endif // BSIM_COMMON_LOGGING_HH
