/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  - a simulator bug; aborts.
 * fatal()  - a user/configuration error; exits with status 1.
 * warn()   - suspicious but non-fatal condition.
 * inform() - status message.
 */

#ifndef BSIM_COMMON_LOGGING_HH
#define BSIM_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace bsim {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);
bool verbose();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

} // namespace bsim

#define bsim_panic(...) \
    ::bsim::panicImpl(__FILE__, __LINE__, ::bsim::detail::concat(__VA_ARGS__))
#define bsim_fatal(...) \
    ::bsim::fatalImpl(__FILE__, __LINE__, ::bsim::detail::concat(__VA_ARGS__))
#define bsim_warn(...) \
    ::bsim::warnImpl(::bsim::detail::concat(__VA_ARGS__))
#define bsim_inform(...) \
    ::bsim::informImpl(::bsim::detail::concat(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define bsim_assert(cond, ...)                                            \
    do {                                                                  \
        if (!(cond))                                                      \
            bsim_panic("assertion '" #cond "' failed. " __VA_ARGS__);    \
    } while (0)

#endif // BSIM_COMMON_LOGGING_HH
