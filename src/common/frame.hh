/**
 * @file
 * Length-prefixed frame codec for the bsim-rpc-v1 wire protocol
 * (docs/SERVE.md §2 — change them together). A frame is an 8-byte
 * header — the 4-byte magic "BRPC" followed by the payload length as a
 * 32-bit little-endian integer — and then exactly that many payload
 * bytes (one JSON document for bsim-rpc, but the codec is
 * content-agnostic).
 *
 * The decoder is incremental and typed: feed() it whatever the socket
 * delivered, pull complete frames with next(), and a malformed stream
 * surfaces as BadMagic/Oversized rather than a crash — the serve layer
 * turns those into `malformed-frame` / `oversized` RPC errors and
 * closes the connection. tests/test_serve.cc fuzzes the decoder with
 * truncated, oversized and garbage inputs at random split points.
 */

#ifndef BSIM_COMMON_FRAME_HH
#define BSIM_COMMON_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace bsim {

/** Leading bytes of every bsim-rpc frame. */
inline constexpr char kFrameMagic[4] = {'B', 'R', 'P', 'C'};
inline constexpr std::size_t kFrameHeaderBytes = 8;

/**
 * Default ceiling on a single frame's payload. Requests are small JSON
 * objects, so anything near this size is a protocol error or abuse;
 * responses (which carry whole bsim-stats-v1 documents) use a larger
 * limit set by the client. Servers reject larger frames with a typed
 * `oversized` error instead of buffering them.
 */
inline constexpr std::size_t kDefaultMaxFramePayload = 1u << 20;

/** Frame @p payload for the wire: header + bytes, ready to send. */
std::string encodeFrame(const std::string &payload);

/** Outcome of FrameDecoder::next(). */
enum class FrameStatus : std::uint8_t {
    NeedMore, ///< no complete frame buffered yet; feed() more bytes
    Frame,    ///< a payload was produced
    BadMagic, ///< stream does not start with "BRPC"; unrecoverable
    Oversized ///< declared payload exceeds the limit; unrecoverable
};

const char *frameStatusName(FrameStatus s);

/**
 * Incremental frame parser over an untrusted byte stream. Feed bytes in
 * any fragmentation; next() yields one payload per complete frame, in
 * order. The two error states are sticky: a stream that has desynced
 * once can never be trusted again, so every later next() repeats the
 * error and the connection should be dropped.
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(
        std::size_t max_payload = kDefaultMaxFramePayload)
        : maxPayload_(max_payload)
    {
    }

    /** Append @p n raw bytes from the stream. */
    void feed(const void *data, std::size_t n);

    /**
     * Try to produce the next payload into @p payload (only written on
     * FrameStatus::Frame). Call until it returns NeedMore.
     */
    FrameStatus next(std::string *payload);

    /** Bytes buffered but not yet consumed by complete frames. */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::size_t maxPayload_;
    std::string buf_;
    std::size_t pos_ = 0; ///< consumed prefix of buf_
    FrameStatus poisoned_ = FrameStatus::NeedMore;
};

} // namespace bsim

#endif // BSIM_COMMON_FRAME_HH
