#include "common/strings.hh"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace bsim {

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args2);
        out.resize(static_cast<std::size_t>(n));
    }
    va_end(args2);
    return out;
}

std::string
sizeString(std::uint64_t bytes)
{
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        return strprintf("%lluMB",
                         static_cast<unsigned long long>(bytes >> 20));
    if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0)
        return strprintf("%llukB",
                         static_cast<unsigned long long>(bytes >> 10));
    return strprintf("%lluB", static_cast<unsigned long long>(bytes));
}

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace bsim
