/**
 * @file
 * ASCII/CSV table rendering used by the benchmark harnesses to print the
 * paper's tables and figure series.
 */

#ifndef BSIM_COMMON_TABLE_HH
#define BSIM_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace bsim {

/**
 * A simple column-aligned table. Cells are strings; numeric helpers format
 * with a fixed precision. Rendered with a header rule, right-aligned
 * numeric-looking cells, and optional CSV output.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. */
    Table &row();

    /** Append a cell to the current row. */
    Table &cell(const std::string &v);
    Table &cell(const char *v);
    Table &cell(double v, int precision = 2);
    Table &cell(std::uint64_t v);
    Table &cell(std::int64_t v);
    Table &cell(int v);
    Table &cell(unsigned v);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }
    /** Cell text by row/col (for tests). */
    const std::string &at(std::size_t r, std::size_t c) const;

    /** Render as an aligned ASCII table. */
    std::string toString() const;

    /** Render as CSV. */
    std::string toCsv() const;

    /** Print the ASCII rendering to stdout with a title line. */
    void print(const std::string &title) const;

    /**
     * Print to an explicit stream — the driver routes human reports to
     * stderr when a '-' export owns stdout, so both stay usable.
     */
    void print(const std::string &title, std::FILE *out) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace bsim

#endif // BSIM_COMMON_TABLE_HH
