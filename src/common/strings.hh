/**
 * @file
 * Small string helpers used by the reporting layer.
 */

#ifndef BSIM_COMMON_STRINGS_HH
#define BSIM_COMMON_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace bsim {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** "16kB", "256kB", "2MB" style size rendering. */
std::string sizeString(std::uint64_t bytes);

/** Split on a delimiter, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char delim);

/** Lower-case copy. */
std::string toLower(std::string s);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

} // namespace bsim

#endif // BSIM_COMMON_STRINGS_HH
