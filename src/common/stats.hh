/**
 * @file
 * Lightweight statistics primitives: counters with derived rates, running
 * scalar statistics, and fixed-bucket histograms. These back every cache
 * and CPU model's reporting.
 */

#ifndef BSIM_COMMON_STATS_HH
#define BSIM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bsim {

/**
 * Running mean/min/max/variance over a stream of doubles
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** Population variance (divides by n). */
    double variance() const;
    double stddev() const;
    /**
     * Unbiased sample variance (divides by n - 1; 0 for fewer than two
     * samples). Use this when the added values are themselves draws from
     * a larger population — e.g. the per-seed suite averages behind the
     * ablation_seeds spread row — where the population form understates
     * the across-draw confidence interval.
     */
    double sampleVariance() const;
    double sampleStddev() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram over non-negative integer samples with uniform bucket width.
 * Samples beyond the last bucket land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void add(std::uint64_t sample, std::uint64_t weight = 1);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const;
    std::uint64_t overflowCount() const { return overflow_; }
    std::uint64_t totalCount() const { return total_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return width_; }

    /**
     * First value beyond the tracked range: samples >= this landed in the
     * overflow bucket. Also the saturation value percentile() returns
     * when the requested rank falls into the overflow bucket.
     */
    std::uint64_t overflowEdge() const { return buckets_.size() * width_; }

    /**
     * Smallest value v guaranteed to satisfy cdf(v) >= fraction: the
     * inclusive upper edge of the bucket holding the target rank (exact
     * when bucketWidth() == 1). fraction <= 0 targets the smallest
     * recorded sample's bucket. When the rank lands in the overflow
     * bucket the true value is unknowable from the histogram; the result
     * saturates to overflowEdge() — callers reporting tail latency must
     * treat it as ">= overflowEdge()", not as a measurement.
     */
    std::uint64_t percentile(double fraction) const;

    std::string toString() const;

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Two-sided 97.5% quantile of Student's t distribution with @p df degrees
 * of freedom (i.e. the multiplier for a 95% confidence interval). Exact
 * table values for df <= 30, interpolated anchors up to df = 100, and the
 * normal limit 1.96 beyond. df == 0 returns infinity: one sampling unit
 * carries no variance information.
 */
double tQuantile975(std::uint64_t df);

/** Point estimate with uncertainty, produced by StratifiedEstimator. */
struct SampleEstimate
{
    /** Ratio point estimate (e.g. miss ratio), sum(m_i) / sum(n_i). */
    double value = 0.0;
    /** Standard error of the ratio estimator across units. */
    double stderrValue = 0.0;
    /** 95% confidence interval, clamped to [0, 1] for ratios. */
    double ciLo = 0.0;
    double ciHi = 0.0;
    /** Number of sampling units the estimate is built from. */
    std::uint64_t units = 0;
    /** Measured records / population records (0 when population unknown). */
    double sampledFraction = 0.0;

    /** True when @p truth lies inside [ciLo, ciHi]. */
    bool
    contains(double truth) const
    {
        return truth >= ciLo && truth <= ciHi;
    }
};

/**
 * Ratio estimator over sampling units for systematic interval sampling
 * (SMARTS-style): each unit i contributes a numerator m_i (misses) and a
 * denominator n_i (accesses). The point estimate is R = sum(m) / sum(n);
 * its variance is the classic ratio-estimator form
 *
 *     s^2 = sum((m_i - R n_i)^2) / (k - 1)
 *     Var(R) ~= (1 - f) * s^2 / (k * nbar^2)
 *
 * with nbar the mean unit size and f the sampled fraction (finite-
 * population correction). Only running sums are kept, so per-unit
 * contributions can be added in any order from integer counters and the
 * result is exactly reproducible — the sharded sampled-replay merge
 * depends on this (units are re-added in unit order after the merge).
 */
class StratifiedEstimator
{
  public:
    /** Add one sampling unit's integer sums. Empty units are skipped. */
    void addUnit(std::uint64_t accesses, std::uint64_t misses);
    /** Total records in the full population (for the sampled fraction). */
    void setPopulation(std::uint64_t records) { population_ = records; }
    void reset();

    std::uint64_t units() const { return units_; }
    std::uint64_t sampledRecords() const
    {
        return static_cast<std::uint64_t>(sumN_);
    }

    /** Compute the estimate from the units added so far. */
    SampleEstimate estimate() const;

  private:
    std::uint64_t units_ = 0;
    std::uint64_t population_ = 0;
    // Running sums in double; exact for any realistic unit count (each
    // term is an integer < 2^53).
    double sumN_ = 0.0;
    double sumM_ = 0.0;
    double sumNN_ = 0.0;
    double sumMM_ = 0.0;
    double sumMN_ = 0.0;
};

/** Ratio helper that renders 0 for a 0/0. */
double safeRatio(double num, double den);

/** Percentage helper: 100 * num / den, 0 on zero denominator. */
double pct(double num, double den);

/**
 * Relative reduction in percent: 100 * (base - x) / base.
 * This is the paper's "miss rate reduction over baseline" metric.
 */
double reductionPct(double base, double x);

} // namespace bsim

#endif // BSIM_COMMON_STATS_HH
