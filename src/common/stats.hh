/**
 * @file
 * Lightweight statistics primitives: counters with derived rates, running
 * scalar statistics, and fixed-bucket histograms. These back every cache
 * and CPU model's reporting.
 */

#ifndef BSIM_COMMON_STATS_HH
#define BSIM_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bsim {

/**
 * Running mean/min/max/variance over a stream of doubles
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    /** Population variance (divides by n). */
    double variance() const;
    double stddev() const;
    /**
     * Unbiased sample variance (divides by n - 1; 0 for fewer than two
     * samples). Use this when the added values are themselves draws from
     * a larger population — e.g. the per-seed suite averages behind the
     * ablation_seeds spread row — where the population form understates
     * the across-draw confidence interval.
     */
    double sampleVariance() const;
    double sampleStddev() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram over non-negative integer samples with uniform bucket width.
 * Samples beyond the last bucket land in an overflow bucket.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void add(std::uint64_t sample, std::uint64_t weight = 1);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const;
    std::uint64_t overflowCount() const { return overflow_; }
    std::uint64_t totalCount() const { return total_; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t bucketWidth() const { return width_; }

    /**
     * First value beyond the tracked range: samples >= this landed in the
     * overflow bucket. Also the saturation value percentile() returns
     * when the requested rank falls into the overflow bucket.
     */
    std::uint64_t overflowEdge() const { return buckets_.size() * width_; }

    /**
     * Smallest value v guaranteed to satisfy cdf(v) >= fraction: the
     * inclusive upper edge of the bucket holding the target rank (exact
     * when bucketWidth() == 1). fraction <= 0 targets the smallest
     * recorded sample's bucket. When the rank lands in the overflow
     * bucket the true value is unknowable from the histogram; the result
     * saturates to overflowEdge() — callers reporting tail latency must
     * treat it as ">= overflowEdge()", not as a measurement.
     */
    std::uint64_t percentile(double fraction) const;

    std::string toString() const;

  private:
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Ratio helper that renders 0 for a 0/0. */
double safeRatio(double num, double den);

/** Percentage helper: 100 * num / den, 0 on zero denominator. */
double pct(double num, double den);

/**
 * Relative reduction in percent: 100 * (base - x) / base.
 * This is the paper's "miss rate reduction over baseline" metric.
 */
double reductionPct(double base, double x);

} // namespace bsim

#endif // BSIM_COMMON_STATS_HH
