#include "common/random.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bsim {

namespace {

/** splitmix64 used to expand the seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Guard against an all-zero state (xoshiro fixed point).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double p, std::uint64_t cap)
{
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    const double u = std::max(nextDouble(), 1e-18);
    const double draw = std::floor(std::log(u) / std::log1p(-p));
    const auto v = static_cast<std::uint64_t>(draw);
    return std::min(v, cap);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
{
    assert(n > 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
        cdf_[r] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
}

std::size_t
ZipfSampler::operator()(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

} // namespace bsim
