#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bsim {

namespace {
bool verboseFlag = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

namespace {
std::atomic<bool> fatalThrowsFlag{false};
} // namespace

void
setFatalThrows(bool enable)
{
    fatalThrowsFlag.store(enable, std::memory_order_relaxed);
}

bool
fatalThrows()
{
    return fatalThrowsFlag.load(std::memory_order_relaxed);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (fatalThrows())
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace bsim
