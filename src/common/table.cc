#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace bsim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    bsim_assert(!headers_.empty());
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &v)
{
    bsim_assert(!rows_.empty(), "cell() before row()");
    bsim_assert(rows_.back().size() < headers_.size(),
                "row has more cells than headers");
    rows_.back().push_back(v);
    return *this;
}

Table &
Table::cell(const char *v)
{
    return cell(std::string(v));
}

Table &
Table::cell(double v, int precision)
{
    return cell(strprintf("%.*f", precision, v));
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(strprintf("%llu", static_cast<unsigned long long>(v)));
}

Table &
Table::cell(std::int64_t v)
{
    return cell(strprintf("%lld", static_cast<long long>(v)));
}

Table &
Table::cell(int v)
{
    return cell(static_cast<std::int64_t>(v));
}

Table &
Table::cell(unsigned v)
{
    return cell(static_cast<std::uint64_t>(v));
}

const std::string &
Table::at(std::size_t r, std::size_t c) const
{
    bsim_assert(r < rows_.size() && c < rows_[r].size());
    return rows_[r][c];
}

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == '%' || c == 'e'))
            return false;
    return true;
}

} // namespace

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string v = c < cells.size() ? cells[c] : "";
            const auto w = static_cast<int>(widths[c]);
            if (c)
                os << "  ";
            if (looksNumeric(v))
                os << strprintf("%*s", w, v.c_str());
            else
                os << strprintf("%-*s", w, v.c_str());
        }
        os << "\n";
    };
    emit(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c ? 2 : 0);
    os << std::string(rule, '-') << "\n";
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream os;
    os << join(headers_, ",") << "\n";
    for (const auto &r : rows_)
        os << join(r, ",") << "\n";
    return os.str();
}

void
Table::print(const std::string &title) const
{
    print(title, stdout);
}

void
Table::print(const std::string &title, std::FILE *out) const
{
    // BSIM_CSV=1 switches every harness to machine-readable output.
    const char *csv = std::getenv("BSIM_CSV");
    if (csv && *csv && *csv != '0')
        std::fprintf(out, "\n# %s\n%s", title.c_str(),
                     toCsv().c_str());
    else
        std::fprintf(out, "\n== %s ==\n%s", title.c_str(),
                     toString().c_str());
    std::fflush(out);
}

} // namespace bsim
