#include "sim/experiment_file.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

namespace bsim {

namespace {

/** Strip whitespace and a trailing ';' comment. */
std::string
cleaned(std::string line)
{
    const auto comment = line.find_first_of(";#");
    if (comment != std::string::npos)
        line.erase(comment);
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const auto e = line.find_last_not_of(" \t\r");
    return line.substr(b, e - b + 1);
}

std::uint64_t
parseNumber(const std::string &v, int lineno)
{
    char *end = nullptr;
    const std::uint64_t n = std::strtoull(v.c_str(), &end, 0);
    if (end == v.c_str() || *end != '\0')
        bsim_fatal("experiment file line ", lineno, ": bad number '", v,
                   "'");
    return n;
}

struct PendingCache
{
    std::string kind = "bcache";
    std::uint64_t size = 16 * 1024;
    std::uint32_t line = 32;
    std::uint32_t ways = 8;
    std::uint32_t mf = 8;
    std::uint32_t bas = 8;
    std::size_t victimEntries = 16;
    std::uint64_t hacSubarray = 1024;
    ReplPolicyKind repl = ReplPolicyKind::LRU;
    WritePolicy wp = WritePolicy::WriteBackAllocate;

    CacheConfig
    materialize(int lineno) const
    {
        CacheConfig c;
        if (kind == "dm")
            c = CacheConfig::directMapped(size, line);
        else if (kind == "setassoc")
            c = CacheConfig::setAssoc(size, ways, repl, line);
        else if (kind == "victim")
            c = CacheConfig::victim(size, victimEntries, line);
        else if (kind == "bcache")
            c = CacheConfig::bcache(size, mf, bas, repl, line);
        else if (kind == "column")
            c = CacheConfig::columnAssoc(size, line);
        else if (kind == "skewed")
            c = CacheConfig::skewed(size, line);
        else if (kind == "hac")
            c = CacheConfig::hac(size, hacSubarray, line);
        else if (kind == "xor")
            c = CacheConfig::xorDm(size, line);
        else
            bsim_fatal("experiment file line ", lineno,
                       ": unknown cache kind '", kind, "'");
        c.repl = repl;
        c.writePolicy = wp;
        return c;
    }
};

} // namespace

ExperimentSpec
parseExperimentText(const std::string &text)
{
    ExperimentSpec spec;
    PendingCache cache;
    int cache_kind_line = 0;

    std::istringstream in(text);
    std::string raw;
    std::string section;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        const std::string line = cleaned(raw);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                bsim_fatal("experiment file line ", lineno,
                           ": unterminated section header");
            section = toLower(line.substr(1, line.size() - 2));
            if (section != "cache" && section != "run")
                bsim_fatal("experiment file line ", lineno,
                           ": unknown section [", section, "]");
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            bsim_fatal("experiment file line ", lineno,
                       ": expected key = value");
        const std::string key = toLower(cleaned(line.substr(0, eq)));
        const std::string val = cleaned(line.substr(eq + 1));
        if (section.empty())
            bsim_fatal("experiment file line ", lineno,
                       ": key outside any section");
        if (val.empty())
            bsim_fatal("experiment file line ", lineno,
                       ": empty value for '", key, "'");

        if (section == "cache") {
            if (key == "kind") {
                cache.kind = toLower(val);
                cache_kind_line = lineno;
            } else if (key == "size") {
                cache.size = parseNumber(val, lineno);
            } else if (key == "line") {
                cache.line = static_cast<std::uint32_t>(
                    parseNumber(val, lineno));
            } else if (key == "ways") {
                cache.ways = static_cast<std::uint32_t>(
                    parseNumber(val, lineno));
            } else if (key == "mf") {
                cache.mf = static_cast<std::uint32_t>(
                    parseNumber(val, lineno));
            } else if (key == "bas") {
                cache.bas = static_cast<std::uint32_t>(
                    parseNumber(val, lineno));
            } else if (key == "victim_entries") {
                cache.victimEntries = static_cast<std::size_t>(
                    parseNumber(val, lineno));
            } else if (key == "hac_subarray") {
                cache.hacSubarray = parseNumber(val, lineno);
            } else if (key == "repl") {
                cache.repl = replPolicyFromName(val);
            } else if (key == "write_policy") {
                const std::string w = toLower(val);
                if (w == "wb")
                    cache.wp = WritePolicy::WriteBackAllocate;
                else if (w == "wt")
                    cache.wp = WritePolicy::WriteThroughNoAllocate;
                else
                    bsim_fatal("experiment file line ", lineno,
                               ": write_policy must be wb or wt");
            } else {
                bsim_fatal("experiment file line ", lineno,
                           ": unknown cache key '", key, "'");
            }
        } else { // run
            if (key == "workload") {
                if (!isSpec2kName(val))
                    bsim_fatal("experiment file line ", lineno,
                               ": unknown workload '", val, "'");
                spec.workload = val;
            } else if (key == "side") {
                const std::string s = toLower(val);
                if (s == "data")
                    spec.side = StreamSide::Data;
                else if (s == "inst")
                    spec.side = StreamSide::Inst;
                else
                    bsim_fatal("experiment file line ", lineno,
                               ": side must be data or inst");
            } else if (key == "trace") {
                spec.tracePath = val;
            } else if (key == "accesses") {
                spec.accesses = parseNumber(val, lineno);
            } else if (key == "seed") {
                spec.seed = parseNumber(val, lineno);
            } else {
                bsim_fatal("experiment file line ", lineno,
                           ": unknown run key '", key, "'");
            }
        }
    }
    spec.cache = cache.materialize(cache_kind_line);
    return spec;
}

ExperimentSpec
parseExperimentFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        bsim_fatal("cannot open experiment file '", path, "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    return parseExperimentText(buf.str());
}

} // namespace bsim
