#include "sim/config.hh"

#include <cstdlib>
#include <thread>

#include "alt/column_assoc_cache.hh"
#include "alt/hac_cache.hh"
#include "alt/partial_match_cache.hh"
#include "alt/skewed_assoc_cache.hh"
#include "alt/xor_index_cache.hh"
#include "bcache/bcache.hh"
#include "cache/set_assoc_cache.hh"
#include "cache/victim_cache.hh"
#include "common/logging.hh"
#include "common/strings.hh"

namespace bsim {

// CacheConfig itself (and its factory helpers) lives in
// cache/cache_spec.cc; build()/bcacheParams() are defined here because
// instantiation needs every concrete variant, and this is the unit that
// links the bcache and alt libraries. The direct constructor references
// below also keep those objects linked into every binary, so the spec
// registry is never silently missing a variant to dead-stripping.

BCacheParams
CacheConfig::bcacheParams() const
{
    bsim_assert(kind == CacheKind::BCache);
    BCacheParams p;
    p.sizeBytes = sizeBytes;
    p.lineBytes = lineBytes;
    p.mf = mf;
    p.bas = bas;
    p.repl = repl;
    p.writePolicy = writePolicy;
    return p;
}

std::unique_ptr<BaseCache>
CacheConfig::build(const std::string &name, Cycles hit_latency,
                   MemLevel *next) const
{
    switch (kind) {
      case CacheKind::SetAssoc:
        return std::make_unique<SetAssocCache>(
            name, CacheGeometry(sizeBytes, lineBytes, ways), hit_latency,
            next, repl, /*repl_seed=*/1, writePolicy);
      case CacheKind::Victim:
        return std::make_unique<VictimCache>(
            name, CacheGeometry(sizeBytes, lineBytes, 1), hit_latency,
            next, victimEntries);
      case CacheKind::BCache:
        return std::make_unique<BCache>(name, bcacheParams(),
                                        hit_latency, next);
      case CacheKind::ColumnAssoc:
        return std::make_unique<ColumnAssocCache>(
            name, CacheGeometry(sizeBytes, lineBytes, 1), hit_latency,
            next);
      case CacheKind::Skewed:
        return std::make_unique<SkewedAssocCache>(
            name, CacheGeometry(sizeBytes, lineBytes, 2), hit_latency,
            next);
      case CacheKind::Hac:
        return std::make_unique<HacCache>(name, sizeBytes, lineBytes,
                                          hacSubarrayBytes, hit_latency,
                                          next, repl);
      case CacheKind::XorDm:
        return std::make_unique<XorIndexCache>(
            name, CacheGeometry(sizeBytes, lineBytes, 1), hit_latency,
            next);
      case CacheKind::PartialMatch:
        return std::make_unique<PartialMatchCache>(
            name, CacheGeometry(sizeBytes, lineBytes, ways), hit_latency,
            next, partialBits, repl);
    }
    bsim_panic("bad cache kind");
}

std::vector<CacheConfig>
figure4Configs(std::uint64_t size_bytes)
{
    std::vector<CacheConfig> v;
    for (std::uint32_t w : {2u, 4u, 8u, 32u})
        v.push_back(CacheConfig::setAssoc(size_bytes, w));
    v.push_back(CacheConfig::victim(size_bytes, 16));
    for (std::uint32_t mf : {2u, 4u, 8u, 16u})
        v.push_back(CacheConfig::bcache(size_bytes, mf, 8));
    return v;
}

unsigned
defaultJobs()
{
    if (const char *v = std::getenv("BSIM_JOBS"); v && *v) {
        char *end = nullptr;
        const unsigned long n = std::strtoul(v, &end, 10);
        if (end != v && *end == '\0' && n >= 1)
            return static_cast<unsigned>(n);
        bsim_warn("ignoring bad BSIM_JOBS='", v, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
consumeJobsFlag(int &argc, char **argv)
{
    unsigned jobs = 0;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
        const std::string arg = argv[r];
        std::string value;
        if (arg == "--jobs") {
            if (r + 1 >= argc)
                bsim_fatal("--jobs requires a value");
            value = argv[++r];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else {
            argv[w++] = argv[r];
            continue;
        }
        char *end = nullptr;
        const unsigned long n = std::strtoul(value.c_str(), &end, 10);
        if (value.empty() || end == value.c_str() || *end != '\0' ||
            n < 1)
            bsim_fatal("bad --jobs value '", value, "'");
        jobs = static_cast<unsigned>(n);
    }
    argc = w;
    argv[argc] = nullptr;
    return jobs;
}

std::vector<CacheConfig>
figure12Configs(std::uint64_t size_bytes)
{
    std::vector<CacheConfig> v;
    for (std::uint32_t w : {2u, 4u, 8u})
        v.push_back(CacheConfig::setAssoc(size_bytes, w));
    v.push_back(CacheConfig::victim(size_bytes, 16));
    for (std::uint32_t bas : {4u, 8u})
        for (std::uint32_t mf : {2u, 4u, 8u, 16u})
            v.push_back(CacheConfig::bcache(size_bytes, mf, bas));
    return v;
}

} // namespace bsim
