#include "sim/report.hh"

namespace bsim {

void
writeJson(JsonWriter &j, const CacheStats &s)
{
    j.beginObject();
    j.kv("accesses", s.accesses);
    j.kv("hits", s.hits);
    j.kv("misses", s.misses);
    j.kv("missRate", s.missRate());
    j.kv("readAccesses", s.readAccesses);
    j.kv("readMisses", s.readMisses);
    j.kv("writeAccesses", s.writeAccesses);
    j.kv("writeMisses", s.writeMisses);
    j.kv("fetchAccesses", s.fetchAccesses);
    j.kv("fetchMisses", s.fetchMisses);
    j.kv("writebacks", s.writebacks);
    j.kv("writethroughs", s.writethroughs);
    j.kv("refills", s.refills);
    j.endObject();
}

void
writeJson(JsonWriter &j, const PdStats &s)
{
    j.beginObject();
    j.kv("pdHitCacheMiss", s.pdHitCacheMiss);
    j.kv("pdMiss", s.pdMiss);
    j.kv("pdHitRateOnMiss", s.pdHitRateOnMiss());
    j.kv("missPredictionRate", s.missPredictionRate());
    j.endObject();
}

void
writeJson(JsonWriter &j, const BalanceReport &b)
{
    j.beginObject();
    j.kv("frequentHitSetsPct", b.fhsPct);
    j.kv("hitsInFrequentHitSetsPct", b.chPct);
    j.kv("frequentMissSetsPct", b.fmsPct);
    j.kv("missesInFrequentMissSetsPct", b.cmPct);
    j.kv("lessAccessedSetsPct", b.lasPct);
    j.kv("accessesInLessAccessedSetsPct", b.tcaPct);
    j.endObject();
}

std::string
toJson(const MissRateResult &r)
{
    JsonWriter j;
    j.beginObject();
    j.kv("workload", r.workload);
    j.kv("config", r.config);
    j.key("stats");
    writeJson(j, r.stats);
    if (r.pd) {
        j.key("pd");
        writeJson(j, *r.pd);
    }
    if (r.victimHits)
        j.kv("victimHits", r.victimHits);
    j.key("balance");
    writeJson(j, r.balance);
    j.endObject();
    return j.str();
}

std::string
toJson(const TimedResult &r)
{
    JsonWriter j;
    j.beginObject();
    j.kv("workload", r.workload);
    j.kv("config", r.config);
    j.kv("uops", r.cpu.uops);
    j.kv("cycles", r.cpu.cycles);
    j.kv("ipc", r.cpu.ipc());
    j.key("l1i");
    writeJson(j, r.l1i);
    j.key("l1d");
    writeJson(j, r.l1d);
    j.key("l2");
    writeJson(j, r.l2);
    j.key("activity");
    j.beginObject();
    j.kv("l2Accesses", r.activity.l2Accesses);
    j.kv("offchipAccesses", r.activity.offchipAccesses);
    j.kv("victimProbes", r.activity.victimProbes);
    j.kv("pdPredictedMisses", r.activity.pdPredictedMisses);
    j.endObject();
    j.endObject();
    return j.str();
}

} // namespace bsim
