#include "sim/report.hh"

#include "observe/export.hh"

namespace bsim {

void
writeJson(JsonWriter &j, const CacheStats &s)
{
    j.beginObject();
    j.kv("accesses", s.accesses);
    j.kv("hits", s.hits);
    j.kv("misses", s.misses);
    j.kv("missRate", s.missRate());
    j.kv("readAccesses", s.readAccesses());
    j.kv("readMisses", s.readMisses());
    j.kv("writeAccesses", s.writeAccesses());
    j.kv("writeMisses", s.writeMisses());
    j.kv("fetchAccesses", s.fetchAccesses());
    j.kv("fetchMisses", s.fetchMisses());
    j.kv("writebacks", s.writebacks);
    j.kv("writethroughs", s.writethroughs);
    j.kv("refills", s.refills);
    j.endObject();
}

void
writeJson(JsonWriter &j, const PdStats &s)
{
    j.beginObject();
    j.kv("pdHitCacheMiss", s.pdHitCacheMiss);
    j.kv("pdMiss", s.pdMiss);
    j.kv("pdHitRateOnMiss", s.pdHitRateOnMiss());
    j.kv("missPredictionRate", s.missPredictionRate());
    j.endObject();
}

void
writeJson(JsonWriter &j, const BalanceReport &b)
{
    j.beginObject();
    j.kv("frequentHitSetsPct", b.fhsPct);
    j.kv("hitsInFrequentHitSetsPct", b.chPct);
    j.kv("frequentMissSetsPct", b.fmsPct);
    j.kv("missesInFrequentMissSetsPct", b.cmPct);
    j.kv("lessAccessedSetsPct", b.lasPct);
    j.kv("accessesInLessAccessedSetsPct", b.tcaPct);
    j.endObject();
}

void
writeJson(JsonWriter &j, const SampledStats &s)
{
    const SampleEstimate e = s.estimate();
    j.beginObject();
    j.kv("unitLen", s.plan.unitLen);
    j.kv("period", s.plan.period);
    j.kv("warmup", s.plan.warmup);
    j.kv("records", s.records);
    j.kv("units", e.units);
    j.kv("sampledFraction", e.sampledFraction);
    j.kv("estimate", e.value);
    j.kv("stderr", e.stderrValue);
    j.kv("ci95lo", e.ciLo);
    j.kv("ci95hi", e.ciHi);
    j.kv("mpki", 1000.0 * e.value);
    j.endObject();
}

std::string
toJson(const MissRateResult &r)
{
    JsonWriter j;
    j.beginObject();
    j.kv("workload", r.workload);
    j.kv("config", r.config);
    j.key("stats");
    writeJson(j, r.stats);
    if (r.pd) {
        j.key("pd");
        writeJson(j, *r.pd);
    }
    if (r.victimHits)
        j.kv("victimHits", r.victimHits);
    if (r.sampled) {
        j.key("sample");
        writeJson(j, *r.sampled);
    } else {
        j.key("balance");
        writeJson(j, r.balance);
    }
    j.endObject();
    return j.str();
}

namespace {

/**
 * The shared per-run body of the bsim-stats-v1 schema: every key of
 * one run except the document framing (schema/driver), emitted into an
 * already-open object. Used verbatim for the top level of single runs
 * and for each element of a sharded document's "shards" array.
 */
void
writeStatsBody(JsonWriter &j, const MissRateResult &r)
{
    j.kv("workload", r.workload);
    j.kv("config", r.config);
    j.key("stats");
    writeJson(j, r.stats);
    if (r.pd) {
        j.key("pd");
        writeJson(j, *r.pd);
    }
    if (r.victimHits)
        j.kv("victimHits", r.victimHits);
    if (r.sampled) {
        // Sampled runs report estimate evidence instead of a balance
        // classification: every unit ran its own short-lived cache, so
        // there is no aggregate per-set usage to classify.
        j.key("sample");
        writeJson(j, *r.sampled);
    } else {
        j.key("balance");
        writeJson(j, r.balance);
    }
    if (r.observer) {
        j.key("observer");
        writeJson(j, *r.observer);
    }
}

} // namespace

std::string
toStatsJson(const MissRateResult &r, const std::string &driver)
{
    JsonWriter j;
    j.beginObject();
    j.kv("schema", "bsim-stats-v1");
    j.kv("driver", driver);
    writeStatsBody(j, r);
    j.endObject();
    return j.str();
}

std::string
toStatsJson(const TraceSweepResult &r, const std::string &workload,
            const std::string &config)
{
    JsonWriter j;
    j.beginObject();
    j.kv("schema", "bsim-stats-v1");
    j.kv("driver", "sharded");
    j.kv("workload", workload);
    j.kv("config", config);
    j.key("stats");
    writeJson(j, r.total);
    if (r.pd) {
        j.key("pd");
        writeJson(j, *r.pd);
    }
    if (r.victimHits)
        j.kv("victimHits", r.victimHits);
    if (r.sampled) {
        // Merged per-unit sums across shards; the estimate is rebuilt
        // from them here, so it is bit-identical to a single-job run.
        j.key("sample");
        writeJson(j, *r.sampled);
    }
    if (r.observer) {
        // The merged per-set histogram supports the same Table 7
        // classification a serial run reports; without an observer the
        // sharded document has no top-level balance (per-shard ones are
        // in the shards array).
        j.key("balance");
        writeJson(j, analyzeBalance(std::span<const SetUsage>(
                         r.observer->perSet)));
        j.key("observer");
        writeJson(j, *r.observer);
    }
    j.key("shards").beginArray();
    for (const MissRateResult &s : r.shards) {
        j.beginObject();
        writeStatsBody(j, s);
        j.endObject();
    }
    j.endArray();
    j.endObject();
    return j.str();
}

std::string
toJson(const TimedResult &r)
{
    JsonWriter j;
    j.beginObject();
    j.kv("workload", r.workload);
    j.kv("config", r.config);
    j.kv("uops", r.cpu.uops);
    j.kv("cycles", r.cpu.cycles);
    j.kv("ipc", r.cpu.ipc());
    j.key("l1i");
    writeJson(j, r.l1i);
    j.key("l1d");
    writeJson(j, r.l1d);
    j.key("l2");
    writeJson(j, r.l2);
    j.key("activity");
    j.beginObject();
    j.kv("l2Accesses", r.activity.l2Accesses);
    j.kv("offchipAccesses", r.activity.offchipAccesses);
    j.kv("victimProbes", r.activity.victimProbes);
    j.kv("pdPredictedMisses", r.activity.pdPredictedMisses);
    j.endObject();
    j.endObject();
    return j.str();
}

} // namespace bsim
