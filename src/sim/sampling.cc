#include "sim/sampling.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace bsim {

namespace {

std::uint64_t
parseField(const std::string &spec, const std::string &field,
           const char *name)
{
    char *end = nullptr;
    const unsigned long long n = std::strtoull(field.c_str(), &end, 10);
    if (field.empty() || end == field.c_str() || *end != '\0')
        bsim_fatal("bad --sample spec '", spec, "': ", name,
                   " is not a number (want U:P[:W])");
    return n;
}

} // namespace

std::uint64_t
SamplePlan::unitsFor(std::uint64_t records) const
{
    if (records == 0 || unitLen == 0 || period == 0)
        return 0;
    // Unit k measures [k*P, min(k*P + U, records)); the last unit starts
    // at the largest k*P < records and may be short.
    return (records - 1) / period + 1;
}

std::string
SamplePlan::toString() const
{
    return std::to_string(unitLen) + ":" + std::to_string(period) + ":" +
           std::to_string(warmup);
}

SamplePlan
parseSamplePlan(const std::string &spec)
{
    SamplePlan plan;
    const std::size_t c1 = spec.find(':');
    if (c1 == std::string::npos)
        bsim_fatal("bad --sample spec '", spec, "' (want U:P[:W])");
    const std::size_t c2 = spec.find(':', c1 + 1);
    plan.unitLen = parseField(spec, spec.substr(0, c1), "unit length U");
    const std::string p_field =
        c2 == std::string::npos ? spec.substr(c1 + 1)
                                : spec.substr(c1 + 1, c2 - c1 - 1);
    plan.period = parseField(spec, p_field, "period P");
    if (c2 != std::string::npos)
        plan.warmup = parseField(spec, spec.substr(c2 + 1), "warmup W");
    if (plan.unitLen == 0)
        bsim_fatal("bad --sample spec '", spec,
                   "': unit length U must be >= 1");
    if (plan.period < plan.unitLen)
        bsim_fatal("bad --sample spec '", spec, "': period P (",
                   plan.period, ") must be >= unit length U (",
                   plan.unitLen, ") or units would overlap");
    return plan;
}

std::optional<SamplePlan>
consumeSampleFlag(int &argc, char **argv)
{
    std::optional<SamplePlan> plan;
    int w = 1;
    for (int r = 1; r < argc; ++r) {
        const std::string arg = argv[r];
        std::string value;
        if (arg == "--sample") {
            if (r + 1 >= argc)
                bsim_fatal("--sample requires a U:P[:W] value");
            value = argv[++r];
        } else if (arg.rfind("--sample=", 0) == 0) {
            value = arg.substr(9);
        } else {
            argv[w++] = argv[r];
            continue;
        }
        plan = parseSamplePlan(value);
    }
    argc = w;
    argv[argc] = nullptr;
    if (!plan) {
        if (const char *v = std::getenv("BSIM_SAMPLE"); v && *v)
            plan = parseSamplePlan(v);
    }
    return plan;
}

std::uint64_t
SampledStats::sampledRecords() const
{
    std::uint64_t n = 0;
    for (const SampleUnitSums &u : units)
        n += u.accesses;
    return n;
}

SampleEstimate
SampledStats::estimate() const
{
    // Always rebuilt from the integer per-unit sums in stored (unit)
    // order: floating-point accumulation order is fixed, so any way of
    // producing the same unit sums yields the same estimate bits.
    StratifiedEstimator est;
    est.setPopulation(records);
    for (const SampleUnitSums &u : units)
        est.addUnit(u.accesses, u.misses);
    return est.estimate();
}

SampledStats &
SampledStats::operator+=(const SampledStats &other)
{
    if (units.empty()) {
        plan = other.plan;
        records = other.records;
    } else if (!other.units.empty() &&
               other.units.front().unit <= units.back().unit) {
        // Shards own disjoint ascending unit ranges and are merged in
        // shard order; anything else breaks the bit-identity contract.
        bsim_fatal("sampled-stats merge out of unit order (unit ",
                   other.units.front().unit, " after unit ",
                   units.back().unit, ")");
    }
    units.insert(units.end(), other.units.begin(), other.units.end());
    return *this;
}

} // namespace bsim
