/**
 * @file
 * Declarative experiment files: a small INI-style format describing one
 * cache configuration and one run, so experiments can be versioned and
 * replayed without recompiling (used by `bsim_cli --config`).
 *
 *     # 16 kB B-Cache on equake
 *     [cache]
 *     kind = bcache        ; dm|setassoc|victim|bcache|column|skewed|
 *     size = 16384         ;   hac|xor
 *     line = 32
 *     mf = 8
 *     bas = 8
 *     repl = lru
 *     write_policy = wb    ; wb|wt
 *
 *     [run]
 *     workload = equake    ; or: trace = /path/to/trace.bst
 *     side = data          ; data|inst
 *     accesses = 1000000
 *     seed = 742893
 */

#ifndef BSIM_SIM_EXPERIMENT_FILE_HH
#define BSIM_SIM_EXPERIMENT_FILE_HH

#include <string>

#include "sim/runner.hh"

namespace bsim {

/** One fully described experiment. */
struct ExperimentSpec
{
    CacheConfig cache = CacheConfig::bcache(16 * 1024, 8, 8);
    std::string workload = "gcc";
    StreamSide side = StreamSide::Data;
    std::string tracePath; ///< non-empty overrides the workload
    std::uint64_t accesses = 1'000'000;
    std::uint64_t seed = kDefaultSeed;
};

/**
 * Parse an experiment description. Unknown sections/keys, malformed
 * lines and invalid values are fatal (configuration errors).
 */
ExperimentSpec parseExperimentText(const std::string &text);

/** Parse from a file. Fatal on I/O failure. */
ExperimentSpec parseExperimentFile(const std::string &path);

} // namespace bsim

#endif // BSIM_SIM_EXPERIMENT_FILE_HH
