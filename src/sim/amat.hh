/**
 * @file
 * Average memory access time (AMAT) in *nanoseconds*, coupling the miss
 * rate to the L1 access time — the paper's central argument made
 * quantitative: a set-associative cache that lowers the miss rate but
 * sits on the critical path stretches every cycle, while the B-Cache
 * gets its miss-rate reduction at the direct-mapped access time.
 *
 * Model: the L1 access sets the clock period, so
 *
 *   AMAT = clock * (hit_cycles + extra_hit_frac * extra_cycles
 *                   + miss_rate * miss_penalty_cycles)
 *
 * where `clock = max(core_floor, l1_access_time)`.
 */

#ifndef BSIM_SIM_AMAT_HH
#define BSIM_SIM_AMAT_HH

#include <string>

#include "common/types.hh"
#include "sim/config.hh"

namespace bsim {

/** AMAT evaluation of one configuration. */
struct AmatResult
{
    NanoSeconds accessTimeNs = 0; ///< raw L1 access time
    NanoSeconds clockNs = 0;      ///< resulting cycle time
    double missRate = 0;
    /** Fraction of hits paying an extra cycle (victim/column rehash). */
    double slowHitFraction = 0;
    Cycles missPenaltyCycles = 0;
    NanoSeconds amatNs = 0;

    std::string toString() const;
};

/** AMAT model parameters. */
struct AmatParams
{
    /** Core pipeline floor on the cycle time (other critical paths). */
    NanoSeconds coreFloorNs = 0.50;
    /** Average L1 miss penalty in cycles (L2 hit dominated). */
    Cycles missPenaltyCycles = 8;
};

/**
 * Evaluate AMAT for a configuration. @p miss_rate and
 * @p slow_hit_fraction come from a measurement run; the access time
 * comes from the logical-effort model, with the B-Cache pinned to the
 * direct-mapped value (Table 1 slack) and victim/column organisations
 * also direct-mapped but with slow-hit fractions.
 */
AmatResult evaluateAmat(const CacheConfig &config, double miss_rate,
                        double slow_hit_fraction = 0.0,
                        const AmatParams &params = {});

} // namespace bsim

#endif // BSIM_SIM_AMAT_HH
