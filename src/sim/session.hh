/**
 * @file
 * The unified experiment session: one object that owns the access
 * source (synthetic workload stream, trace window, or sampled trace),
 * the DUT built from a declarative CacheConfig (cache/cache_spec.hh),
 * the observer wiring, and the export sinks (human report suppression,
 * bsim-stats-v1 JSON, per-set heatmap CSV, interval series).
 *
 * Before this layer, runner.cc, trace_replay.cc and the bsim driver
 * each re-implemented DUT setup, the batched access loops, observer
 * attach/harvest and result assembly. They are now thin adapters over
 * Session; the run loops live here, once, and the bit-identity
 * contracts (batched == per-access, span boundaries don't matter,
 * sampled unit sums are pure functions of (source, config, plan, k))
 * are pinned against this single implementation.
 */

#ifndef BSIM_SIM_SESSION_HH
#define BSIM_SIM_SESSION_HH

#include <memory>
#include <optional>
#include <string>

#include "sim/runner.hh"
#include "workload/trace_reader.hh"

namespace bsim {

/** Knobs for one trace-replay session (moved from trace_replay.hh). */
struct TraceReplayOptions
{
    /** Stop after this many accesses (0 = the whole window). */
    std::uint64_t maxAccesses = 0;
    /** Span clamp fed to accessBatch; 0 = defaultBatchLen(). */
    std::size_t batchLen = 0;
    /** Ride a StatsObserver along (observe/observer.hh). */
    ObserverConfig observe;
    /**
     * Shared open-trace handle (workload/trace_reader.hh). When set,
     * readers are opened from it — the serving layer's TraceRegistry
     * reuses one mmap across concurrent requests this way. The trace
     * path must match the handle's; results are bit-identical to the
     * per-request open (same bytes, same windows).
     */
    TraceHandlePtr handle;
};

/**
 * One experiment run: a source, a DUT, an observer, a result.
 *
 * A Session is single-shot — construct, then call run() or
 * runSampled() exactly once (the source is consumed). Stream sources
 * are caller-owned and borrowed; trace sources are opened and owned by
 * the session.
 */
class Session
{
  public:
    /**
     * Session over a caller-owned access stream (synthetic workload or
     * any other AccessStream). @p accesses is the run length — streams
     * are unbounded, so it is also the sampled population.
     */
    Session(AccessStream &stream, const CacheConfig &config,
            std::uint64_t accesses, std::string label,
            const ObserverConfig &observe = {},
            std::size_t batch_len = 0);

    /**
     * Session over one window of a trace file (options.maxAccesses 0 =
     * the whole window). The trace is opened lazily at run time, so
     * constructing a Session for a missing file only fails when run.
     */
    Session(std::string trace_path, const CacheConfig &config,
            const TraceShard &shard = {},
            const TraceReplayOptions &options = {});

    Session(Session &&) = default;
    Session &operator=(Session &&) = default;

    /**
     * Full run: every record of the source window through one DUT.
     * The miss-rate analogue of the old runMissRateOn/runTraceReplay.
     */
    MissRateResult run();

    /**
     * Sampled run (sim/sampling.hh): simulate only @p plan's units,
     * each from a cold cache with its warmup fenced off by a stats
     * snapshot. Seekable sources (traces) skip between units in O(1)
     * and accept a unit range [first_unit, first_unit + unit_count)
     * for sharding (unit_count 0 = through the last unit); stream
     * sources are consumed in one forward pass, discarding records
     * between units, and must run the full unit list.
     */
    MissRateResult runSampled(const SamplePlan &plan,
                              std::uint64_t first_unit = 0,
                              std::uint64_t unit_count = 0);

    /** The workload label results will carry. */
    const std::string &label() const { return label_; }

  private:
    MissRateResult finish(BaseCache &cache, const StatsObserver *obs,
                          bool collect_aggregates) const;
    std::uint64_t sampledPopulation() const;

    CacheConfig config_;
    std::string label_;
    ObserverConfig observe_;
    std::uint64_t maxAccesses_ = 0;
    std::size_t batchLen_ = 0;

    AccessStream *stream_ = nullptr; ///< borrowed; null for traces
    std::string tracePath_;          ///< non-empty for trace sources
    TraceShard shard_;
    TraceHandlePtr handle_;          ///< optional shared open trace
};

/**
 * The observer-driven export set shared by every driver path: the
 * bsim-stats-v1 document, the per-set heatmap CSV, and — when no JSON
 * document captures it — the interval series CSV on stdout. (Moved
 * from the bsim driver so any harness can reuse the sink wiring.)
 */
struct StatsExport
{
    std::string statsJsonPath; ///< empty = off; "-" = stdout
    std::string heatmapPath;   ///< empty = off; "-" = stdout
    std::uint64_t interval = 0;

    bool
    wantsObserver() const
    {
        return !statsJsonPath.empty() || !heatmapPath.empty() ||
               interval > 0;
    }

    ObserverConfig
    observerConfig() const
    {
        ObserverConfig c;
        c.enabled = wantsObserver();
        c.intervalLen = interval;
        return c;
    }

    /**
     * A "-" export owns stdout: the human-readable report is
     * suppressed so the emitted document stays machine-parseable.
     */
    bool
    claimsStdout() const
    {
        return statsJsonPath == "-" || heatmapPath == "-";
    }
};

/** Write @p text to @p path, with "-" meaning stdout. */
void writeTextOutput(const std::string &path, const std::string &text);

/** Emit the heatmap/interval CSV exports for one observed run. */
void writeObserverExports(const StatsExport &ex,
                          const ObserverReport &rep);

/**
 * Compose a two-level hierarchy from a declarative HierarchySpec: both
 * L1 slots built from spec.l1, the shared L2 and memory from
 * spec.params (defaults = kTable4Hierarchy).
 */
CacheHierarchy makeHierarchy(const HierarchySpec &spec);

} // namespace bsim

#endif // BSIM_SIM_SESSION_HH
