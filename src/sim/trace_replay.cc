#include "sim/trace_replay.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace bsim {

MissRateResult
runTraceReplay(const std::string &path, const CacheConfig &config,
               const TraceShard &shard,
               const TraceReplayOptions &options)
{
    return Session(path, config, shard, options).run();
}

namespace {

/** shardTrace() body, parameterized on an already-probed header. */
std::vector<TraceShard>
shardWindows(const TraceInfo &info, const std::string &path,
             unsigned shards)
{
    if (info.recordCount == kUnknownRecordCount)
        bsim_fatal("cannot shard text trace '", path,
                   "': the record count is unknown without a full "
                   "scan; convert it to .bst first (docs/TRACES.md)");
    const std::uint64_t records = info.recordCount;
    const std::uint64_t want = std::max(shards, 1u);
    std::vector<TraceShard> out;
    if (records == 0) {
        // One empty shard keeps "replay this trace" well-formed.
        out.push_back(TraceShard{0, 0});
        return out;
    }
    if (info.chunkLen > 0) {
        // BST2: boundaries land on chunk edges so every shard's window
        // starts at an O(1)-seekable offset and no chunk is split.
        const std::uint64_t chunks =
            (records + info.chunkLen - 1) / info.chunkLen;
        const std::uint64_t groups =
            std::min<std::uint64_t>(want, chunks);
        for (std::uint64_t g = 0; g < groups; ++g) {
            const std::uint64_t c0 = g * chunks / groups;
            const std::uint64_t c1 = (g + 1) * chunks / groups;
            const std::uint64_t r0 = c0 * info.chunkLen;
            const std::uint64_t r1 = std::min<std::uint64_t>(
                c1 * info.chunkLen, records);
            out.push_back(TraceShard{r0, r1 - r0});
        }
    } else {
        // BST1 has no chunk framing; an even record split is as good as
        // any (the reader skips to the window sequentially).
        const std::uint64_t groups =
            std::min<std::uint64_t>(want, records);
        for (std::uint64_t g = 0; g < groups; ++g) {
            const std::uint64_t r0 = g * records / groups;
            const std::uint64_t r1 = (g + 1) * records / groups;
            out.push_back(TraceShard{r0, r1 - r0});
        }
    }
    return out;
}

} // namespace

std::vector<TraceShard>
shardTrace(const std::string &path, unsigned shards)
{
    return shardWindows(probeTrace(path), path, shards);
}

CacheStats
mergeShardStats(const std::vector<MissRateResult> &shards)
{
    // One merge path for the aggregate counters: CacheStats::operator+=
    // (cache/cache_stats.hh) is the single source of truth, so a field
    // added there is summed here with no hand-copied list to update.
    CacheStats total;
    for (const MissRateResult &s : shards)
        total += s.stats;
    return total;
}

void
mergeSideCounters(TraceSweepResult &total, const MissRateResult &shard)
{
    total.victimHits += shard.victimHits;
    if (shard.pd) {
        if (!total.pd)
            total.pd = PdStats{};
        *total.pd += *shard.pd;
    }
    if (shard.observer) {
        if (!total.observer)
            total.observer = ObserverReport{};
        *total.observer += *shard.observer;
    }
    if (shard.sampled) {
        if (!total.sampled)
            total.sampled = SampledStats{};
        *total.sampled += *shard.sampled;
    }
}

namespace {

/** Sampled population: trace records, optionally capped by the caller. */
std::uint64_t
sampledPopulation(const std::string &path,
                  const TraceReplayOptions &options)
{
    const TraceInfo info =
        options.handle ? options.handle->info() : probeTrace(path);
    if (info.recordCount == kUnknownRecordCount)
        bsim_fatal("cannot sample text trace '", path,
                   "': the record count is unknown without a full "
                   "scan; convert it to .bst first (docs/TRACES.md)");
    std::uint64_t records = info.recordCount;
    if (options.maxAccesses)
        records = std::min(records, options.maxAccesses);
    return records;
}

} // namespace

MissRateResult
runTraceSampled(const std::string &path, const CacheConfig &config,
                const SamplePlan &plan,
                const TraceReplayOptions &options,
                std::uint64_t first_unit, std::uint64_t unit_count)
{
    return Session(path, config, TraceShard{}, options)
        .runSampled(plan, first_unit, unit_count);
}

TraceSweepResult
runTraceSampledSharded(const std::string &path, const CacheConfig &config,
                       const SamplePlan &plan, unsigned shards,
                       const SweepOptions &options,
                       const TraceReplayOptions &replay)
{
    const std::uint64_t records = sampledPopulation(path, replay);
    const std::uint64_t n_units = plan.unitsFor(records);
    // Partition unit indices, never records: shard g owns units
    // [g*K/S, (g+1)*K/S), so the concatenation of per-unit sums in
    // shard order is exactly the single-job unit list.
    const std::uint64_t groups = std::max<std::uint64_t>(
        std::min<std::uint64_t>(std::max(shards, 1u), n_units), 1);
    std::vector<SweepJob> jobs;
    jobs.reserve(static_cast<std::size_t>(groups));
    for (std::uint64_t g = 0; g < groups; ++g) {
        const std::uint64_t g0 = g * n_units / groups;
        const std::uint64_t g1 = (g + 1) * n_units / groups;
        if (g0 == g1 && n_units > 0)
            continue;
        jobs.push_back(SweepJob::traceSampled(path, config, plan, g0,
                                              g1 - g0,
                                              replay.maxAccesses,
                                              replay.batchLen));
        jobs.back().traceHandle = replay.handle;
    }
    const SweepRun run = runSweep(jobs, options);

    TraceSweepResult result;
    result.shards.reserve(run.outcomes.size());
    for (const SweepOutcome &out : run.outcomes)
        result.shards.push_back(missResult(out));
    result.total = mergeShardStats(result.shards);
    for (const MissRateResult &s : result.shards)
        mergeSideCounters(result, s);
    result.summary = run.summary;
    return result;
}

TraceSweepResult
runTraceSharded(const std::string &path, const CacheConfig &config,
                unsigned shards, const SweepOptions &options,
                const TraceReplayOptions &replay)
{
    const std::vector<TraceShard> windows =
        replay.handle
            ? shardWindows(replay.handle->info(), path, shards)
            : shardTrace(path, shards);
    std::vector<SweepJob> jobs;
    jobs.reserve(windows.size());
    for (const TraceShard &w : windows) {
        jobs.push_back(SweepJob::traceReplay(path, w, config,
                                             replay.maxAccesses,
                                             replay.batchLen,
                                             replay.observe));
        jobs.back().traceHandle = replay.handle;
    }
    const SweepRun run = runSweep(jobs, options);

    TraceSweepResult result;
    result.shards.reserve(run.outcomes.size());
    for (const SweepOutcome &out : run.outcomes)
        result.shards.push_back(missResult(out));
    result.total = mergeShardStats(result.shards);
    for (const MissRateResult &s : result.shards)
        mergeSideCounters(result, s);
    result.summary = run.summary;
    return result;
}

} // namespace bsim
