#include "sim/trace_replay.hh"

#include <algorithm>
#include <vector>

#include "cache/victim_cache.hh"
#include "common/logging.hh"

namespace bsim {

namespace {

std::string
replayLabel(const std::string &path, const TraceShard &shard)
{
    if (shard.firstRecord == 0 &&
        shard.recordCount == kUnknownRecordCount)
        return "trace:" + path;
    const std::string count =
        shard.recordCount == kUnknownRecordCount
            ? std::string("rest")
            : std::to_string(shard.recordCount);
    return "trace:" + path + "[" + std::to_string(shard.firstRecord) +
           "+" + count + ")";
}

} // namespace

MissRateResult
runTraceReplay(const std::string &path, const CacheConfig &config,
               const TraceShard &shard,
               const TraceReplayOptions &options)
{
    TraceReaderPtr reader = openTraceReader(path, shard);
    auto cache = config.build(config.label, 1, nullptr);
    auto obs = attachObserver(*cache, options.observe);
    const std::size_t batch_len =
        options.batchLen ? options.batchLen : defaultBatchLen();
    std::uint64_t left =
        options.maxAccesses ? options.maxAccesses : ~std::uint64_t{0};

    if (batch_len <= 1) {
        // Per-access path (BSIM_BATCH=0/1): still streamed one chunk at
        // a time, just replayed record by record.
        while (left > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, 65536));
            // Re-clamp what actually came back: nextSpan() promises at
            // most `want` records, but `left -= size` is an unsigned
            // subtraction that would wrap past options.maxAccesses if a
            // reader ever over-delivered, so don't let a buggy reader
            // turn a bounded replay into a (near-)unbounded one.
            std::span<const MemAccess> s = reader->nextSpan(want);
            s = s.first(std::min(s.size(), want));
            if (s.empty())
                break;
            for (const MemAccess &a : s)
                cache->access(a);
            left -= s.size();
        }
    } else {
        // Batched hot loop: spans come straight from the reader's chunk
        // buffer (the mmap itself for uncompressed BST2), so nothing is
        // copied per record on the way into accessBatch.
        std::vector<AccessOutcome> outs(batch_len);
        while (left > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, batch_len));
            // Same defensive clamp as above; it also keeps an
            // over-delivering reader from overrunning `outs`.
            std::span<const MemAccess> s = reader->nextSpan(want);
            s = s.first(std::min(s.size(), want));
            if (s.empty())
                break;
            cache->accessBatch(s, outs.data());
            left -= s.size();
        }
    }

    MissRateResult r;
    r.workload = replayLabel(path, shard);
    r.config = config.label;
    r.stats = cache->stats();
    r.balance = analyzeBalance(cache->setUsage());
    if (auto *bc = dynamic_cast<BCache *>(cache.get()))
        r.pd = bc->pdStats();
    if (auto *vc = dynamic_cast<VictimCache *>(cache.get()))
        r.victimHits = vc->victimHits();
    r.observer = harvestObserver(obs.get(), *cache);
    return r;
}

std::vector<TraceShard>
shardTrace(const std::string &path, unsigned shards)
{
    const TraceInfo info = probeTrace(path);
    if (info.recordCount == kUnknownRecordCount)
        bsim_fatal("cannot shard text trace '", path,
                   "': the record count is unknown without a full "
                   "scan; convert it to .bst first (docs/TRACES.md)");
    const std::uint64_t records = info.recordCount;
    const std::uint64_t want = std::max(shards, 1u);
    std::vector<TraceShard> out;
    if (records == 0) {
        // One empty shard keeps "replay this trace" well-formed.
        out.push_back(TraceShard{0, 0});
        return out;
    }
    if (info.chunkLen > 0) {
        // BST2: boundaries land on chunk edges so every shard's window
        // starts at an O(1)-seekable offset and no chunk is split.
        const std::uint64_t chunks =
            (records + info.chunkLen - 1) / info.chunkLen;
        const std::uint64_t groups =
            std::min<std::uint64_t>(want, chunks);
        for (std::uint64_t g = 0; g < groups; ++g) {
            const std::uint64_t c0 = g * chunks / groups;
            const std::uint64_t c1 = (g + 1) * chunks / groups;
            const std::uint64_t r0 = c0 * info.chunkLen;
            const std::uint64_t r1 = std::min<std::uint64_t>(
                c1 * info.chunkLen, records);
            out.push_back(TraceShard{r0, r1 - r0});
        }
    } else {
        // BST1 has no chunk framing; an even record split is as good as
        // any (the reader skips to the window sequentially).
        const std::uint64_t groups =
            std::min<std::uint64_t>(want, records);
        for (std::uint64_t g = 0; g < groups; ++g) {
            const std::uint64_t r0 = g * records / groups;
            const std::uint64_t r1 = (g + 1) * records / groups;
            out.push_back(TraceShard{r0, r1 - r0});
        }
    }
    return out;
}

CacheStats
mergeShardStats(const std::vector<MissRateResult> &shards)
{
    // One merge path for the aggregate counters: CacheStats::operator+=
    // (cache/cache_stats.hh) is the single source of truth, so a field
    // added there is summed here with no hand-copied list to update.
    CacheStats total;
    for (const MissRateResult &s : shards)
        total += s.stats;
    return total;
}

void
mergeSideCounters(TraceSweepResult &total, const MissRateResult &shard)
{
    total.victimHits += shard.victimHits;
    if (shard.pd) {
        if (!total.pd)
            total.pd = PdStats{};
        *total.pd += *shard.pd;
    }
    if (shard.observer) {
        if (!total.observer)
            total.observer = ObserverReport{};
        *total.observer += *shard.observer;
    }
    if (shard.sampled) {
        if (!total.sampled)
            total.sampled = SampledStats{};
        *total.sampled += *shard.sampled;
    }
}

namespace {

/** Sampled population: trace records, optionally capped by the caller. */
std::uint64_t
sampledPopulation(const std::string &path,
                  const TraceReplayOptions &options)
{
    const TraceInfo info = probeTrace(path);
    if (info.recordCount == kUnknownRecordCount)
        bsim_fatal("cannot sample text trace '", path,
                   "': the record count is unknown without a full "
                   "scan; convert it to .bst first (docs/TRACES.md)");
    std::uint64_t records = info.recordCount;
    if (options.maxAccesses)
        records = std::min(records, options.maxAccesses);
    return records;
}

} // namespace

MissRateResult
runTraceSampled(const std::string &path, const CacheConfig &config,
                const SamplePlan &plan,
                const TraceReplayOptions &options,
                std::uint64_t first_unit, std::uint64_t unit_count)
{
    if (options.observe.enabled)
        bsim_fatal("sampled replay cannot ride an observer: each unit "
                   "runs its own short-lived cache, so there is no "
                   "aggregate per-set state to observe");
    const std::uint64_t records = sampledPopulation(path, options);
    const std::uint64_t n_units = plan.unitsFor(records);
    const std::uint64_t u0 = std::min(first_unit, n_units);
    const std::uint64_t u1 = unit_count == 0
                                 ? n_units
                                 : std::min(u0 + unit_count, n_units);

    TraceReaderPtr reader = openTraceReader(path);
    const std::size_t batch_len = std::max<std::size_t>(
        options.batchLen ? options.batchLen : defaultBatchLen(), 1);
    std::vector<AccessOutcome> outs(batch_len);

    SampledStats sampled;
    sampled.plan = plan;
    sampled.records = records;
    sampled.units.reserve(static_cast<std::size_t>(u1 - u0));
    CacheStats total;

    auto pump = [&](BaseCache &cache, std::uint64_t n) {
        while (n > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(n, batch_len));
            // Same defensive clamp as runTraceReplay.
            std::span<const MemAccess> s = reader->nextSpan(want);
            s = s.first(std::min(s.size(), want));
            if (s.empty())
                bsim_fatal("trace '", path, "' ended at record ",
                           reader->position(),
                           " inside a sampling unit");
            cache.accessBatch(s, outs.data());
            n -= s.size();
        }
    };

    for (std::uint64_t k = u0; k < u1; ++k) {
        // Unit k measures [k*P, min(k*P + U, records)), warmed up from
        // a cold cache over the W records before it. Simulating every
        // unit independently is what makes a unit's sums a pure
        // function of (trace, config, plan, k) — the bit-identity
        // contract sharding relies on.
        const std::uint64_t start = k * plan.period;
        const std::uint64_t end =
            std::min(start + plan.unitLen, records);
        const std::uint64_t warm_start =
            start >= plan.warmup ? start - plan.warmup : 0;
        reader->skipTo(warm_start);
        auto cache = config.build(config.label, 1, nullptr);
        pump(*cache, start - warm_start);
        const CacheStats after_warmup = cache->stats();
        pump(*cache, end - start);
        CacheStats delta = cache->stats();
        delta -= after_warmup;
        total += delta;
        sampled.units.push_back({k, delta.accesses, delta.misses});
    }

    MissRateResult r;
    r.workload = replayLabel(path, TraceShard{});
    r.config = config.label;
    r.stats = total;
    r.sampled = std::move(sampled);
    return r;
}

TraceSweepResult
runTraceSampledSharded(const std::string &path, const CacheConfig &config,
                       const SamplePlan &plan, unsigned shards,
                       const SweepOptions &options,
                       const TraceReplayOptions &replay)
{
    const std::uint64_t records = sampledPopulation(path, replay);
    const std::uint64_t n_units = plan.unitsFor(records);
    // Partition unit indices, never records: shard g owns units
    // [g*K/S, (g+1)*K/S), so the concatenation of per-unit sums in
    // shard order is exactly the single-job unit list.
    const std::uint64_t groups = std::max<std::uint64_t>(
        std::min<std::uint64_t>(std::max(shards, 1u), n_units), 1);
    std::vector<SweepJob> jobs;
    jobs.reserve(static_cast<std::size_t>(groups));
    for (std::uint64_t g = 0; g < groups; ++g) {
        const std::uint64_t g0 = g * n_units / groups;
        const std::uint64_t g1 = (g + 1) * n_units / groups;
        if (g0 == g1 && n_units > 0)
            continue;
        jobs.push_back(SweepJob::traceSampled(path, config, plan, g0,
                                              g1 - g0,
                                              replay.maxAccesses,
                                              replay.batchLen));
    }
    const SweepRun run = runSweep(jobs, options);

    TraceSweepResult result;
    result.shards.reserve(run.outcomes.size());
    for (const SweepOutcome &out : run.outcomes)
        result.shards.push_back(missResult(out));
    result.total = mergeShardStats(result.shards);
    for (const MissRateResult &s : result.shards)
        mergeSideCounters(result, s);
    result.summary = run.summary;
    return result;
}

TraceSweepResult
runTraceSharded(const std::string &path, const CacheConfig &config,
                unsigned shards, const SweepOptions &options,
                const TraceReplayOptions &replay)
{
    const std::vector<TraceShard> windows = shardTrace(path, shards);
    std::vector<SweepJob> jobs;
    jobs.reserve(windows.size());
    for (const TraceShard &w : windows)
        jobs.push_back(SweepJob::traceReplay(path, w, config,
                                             replay.maxAccesses,
                                             replay.batchLen,
                                             replay.observe));
    const SweepRun run = runSweep(jobs, options);

    TraceSweepResult result;
    result.shards.reserve(run.outcomes.size());
    for (const SweepOutcome &out : run.outcomes)
        result.shards.push_back(missResult(out));
    result.total = mergeShardStats(result.shards);
    for (const MissRateResult &s : result.shards)
        mergeSideCounters(result, s);
    result.summary = run.summary;
    return result;
}

} // namespace bsim
