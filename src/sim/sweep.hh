/**
 * @file
 * Parallel sweep engine: runs a vector of independent experiment cells
 * (workload x side x CacheConfig x run length) on a fixed-size worker
 * pool and returns results in submission order.
 *
 * Determinism contract: a job's workload seed depends only on the job
 * itself — either the explicit SweepJob::seed, or
 * sweepSeed(SweepOptions::baseSeed, job_index) — never on thread count
 * or scheduling, so an N-thread sweep is bit-identical to the same
 * sweep on one thread. Jobs share no mutable state (each builds its own
 * workload and cache models), which is what makes the fan-out safe.
 */

#ifndef BSIM_SIM_SWEEP_HH
#define BSIM_SIM_SWEEP_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workload/trace_reader.hh"

namespace bsim {

/** One experiment cell submitted to runSweep(). */
struct SweepJob
{
    /** Which runner executes the cell. */
    enum class Kind : std::uint8_t {
        MissRate, ///< standalone cache via runMissRate()
        Timed,    ///< OOO core + two-level hierarchy via runTimed()
        Custom,   ///< caller-supplied callable (e.g. a verify fuzz case)
        Trace,    ///< trace-window replay via runTraceReplay()
    };

    Kind kind = Kind::MissRate;
    std::string workload;               ///< one of spec2kNames()
    StreamSide side = StreamSide::Data; ///< MissRate jobs only
    CacheConfig config;
    std::uint64_t length = 0; ///< accesses (MissRate) or uops (Timed)
    /**
     * Workload seed. Unset derives sweepSeed(baseSeed, job_index); set
     * it explicitly to reproduce a specific serial runMissRate/runTimed
     * call (the benches pin kDefaultSeed so their tables match the
     * serial numbers recorded in EXPERIMENTS.md).
     */
    std::optional<std::uint64_t> seed;
    HierarchyParams hierarchy; ///< Timed jobs only
    /**
     * Custom jobs only: runs on a worker with the job's derived seed and
     * returns the number of simulated events it performed (counted into
     * SweepSummary::events). Throwing fails the job like any runner. The
     * callable must be self-contained — it shares no mutable state with
     * other jobs, preserving the engine's determinism contract.
     */
    std::function<std::uint64_t(std::uint64_t seed)> custom;
    /** Trace jobs only: file to replay and the record window owned. */
    std::string tracePath;
    TraceShard shard;
    /**
     * Trace jobs only: optional shared open-trace handle matching
     * tracePath (workload/trace_reader.hh). Concurrent jobs then replay
     * windows of one mmap instead of re-opening the file per job; the
     * results are bit-identical either way.
     */
    TraceHandlePtr traceHandle;
    /** Trace jobs only: batch length (0 = defaultBatchLen()). */
    std::size_t traceBatchLen = 0;
    /** Trace jobs only: ride a StatsObserver along with the replay. */
    ObserverConfig observe;
    /**
     * When set, the job runs sampled (sim/sampling.hh): MissRate jobs
     * go through runMissRateSampled(), Trace jobs through
     * runTraceSampled() on the unit range below. Sampled jobs ignore
     * `shard` (warmup windows may precede a record boundary; units are
     * partitioned instead) and must not set `observe`.
     */
    std::optional<SamplePlan> sample;
    /** Sampled Trace jobs: first unit index this job owns. */
    std::uint64_t sampleFirstUnit = 0;
    /** Sampled Trace jobs: units owned (0 = through the last unit). */
    std::uint64_t sampleUnitCount = 0;

    static SweepJob missRate(std::string workload, StreamSide side,
                             CacheConfig config, std::uint64_t accesses,
                             std::optional<std::uint64_t> seed = {});
    static SweepJob timed(std::string workload, CacheConfig config,
                          std::uint64_t uops,
                          std::optional<std::uint64_t> seed = {},
                          HierarchyParams hierarchy = {});
    /** @p label is reported in place of a workload name on failure. */
    static SweepJob customJob(
        std::string label,
        std::function<std::uint64_t(std::uint64_t seed)> fn,
        std::optional<std::uint64_t> seed = {});
    /**
     * Replay one window of a trace file (sim/trace_replay.hh).
     * @p max_accesses 0 replays the whole window. The trace is the
     * workload, so the derived seed is unused — the job is a pure
     * function of (path, shard, config), which is what makes sharded
     * replay bit-identical at any thread count. @p batch_len and
     * @p observe mirror TraceReplayOptions (held as scalar fields here
     * so sweep.hh does not need trace_replay.hh, which includes it).
     */
    static SweepJob traceReplay(std::string path, TraceShard shard,
                                CacheConfig config,
                                std::uint64_t max_accesses = 0,
                                std::size_t batch_len = 0,
                                ObserverConfig observe = {});
    /**
     * Sampled replay of units [first_unit, first_unit + unit_count) of
     * @p plan's grid over @p path (sim/trace_replay.hh). Like
     * traceReplay, a pure function of its arguments — the derived seed
     * is unused. @p max_accesses caps the *population* the unit grid is
     * laid over, not a replay length.
     */
    static SweepJob traceSampled(std::string path, CacheConfig config,
                                 SamplePlan plan,
                                 std::uint64_t first_unit,
                                 std::uint64_t unit_count,
                                 std::uint64_t max_accesses = 0,
                                 std::size_t batch_len = 0);
};

/** Result of one job, delivered in submission order. */
struct SweepOutcome
{
    std::size_t index = 0;  ///< position in the submitted job vector
    std::uint64_t seed = 0; ///< workload seed the job actually used
    std::optional<MissRateResult> miss; ///< MissRate jobs
    std::optional<TimedResult> timed;   ///< Timed jobs
    /** Custom jobs: events the callable reported. */
    std::optional<std::uint64_t> customEvents;
    std::string error;    ///< non-empty if the job threw
    double seconds = 0.0; ///< wall time of this job

    bool ok() const { return error.empty(); }
};

/** Aggregate metrics of one runSweep() call. */
struct SweepSummary
{
    std::size_t jobs = 0;
    std::size_t failed = 0;
    unsigned threads = 0;
    std::uint64_t events = 0; ///< simulated accesses + uops
    double wallSeconds = 0.0;

    double eventsPerSecond() const;

    /**
     * Fold in another sweep's metrics (a harness that runs several
     * sweeps reports one combined perf record): counts add, wall time
     * adds (the sweeps ran back to back).
     */
    void
    merge(const SweepSummary &other)
    {
        jobs += other.jobs;
        failed += other.failed;
        threads = threads > other.threads ? threads : other.threads;
        events += other.events;
        wallSeconds += other.wallSeconds;
    }
};

/** Snapshot handed to the progress hook after each job completes. */
struct SweepProgress
{
    std::size_t done = 0;
    std::size_t total = 0;
    std::uint64_t events = 0; ///< simulated accesses + uops so far
    double seconds = 0.0;     ///< wall time since the sweep started
};

/** Knobs for one runSweep() call. */
struct SweepOptions
{
    /** Worker threads; 0 uses defaultJobs() (BSIM_JOBS / --jobs). */
    unsigned jobs = 0;
    /** Base for per-job seed derivation (jobs without explicit seeds). */
    std::uint64_t baseSeed = kDefaultSeed;
    /**
     * Invoked after each job completes. Calls are serialized (a mutex)
     * but may come from any worker thread; the hook must not throw.
     */
    std::function<void(const SweepProgress &)> onProgress;
};

/** Outcomes (submission order) plus the aggregate metrics. */
struct SweepRun
{
    std::vector<SweepOutcome> outcomes;
    SweepSummary summary;
};

/**
 * Per-job seed derivation: one splitmix64 step keyed by the job index.
 * Pure function of (base_seed, job_index), so results cannot depend on
 * scheduling.
 */
std::uint64_t sweepSeed(std::uint64_t base_seed, std::size_t job_index);

/**
 * Execute every job on min(options.jobs, jobs.size()) worker threads.
 * A job that throws is captured in its outcome's `error` field; the
 * remaining jobs still run and the call always returns (no deadlock).
 */
SweepRun runSweep(const std::vector<SweepJob> &jobs,
                  const SweepOptions &options = {});

/** The outcome's MissRateResult; bsim_fatal if the job failed. */
const MissRateResult &missResult(const SweepOutcome &outcome);

/** The outcome's TimedResult; bsim_fatal if the job failed. */
const TimedResult &timedResult(const SweepOutcome &outcome);

/**
 * Print the engine's metrics (jobs, wall time, aggregate simulated
 * events/s) as a one-row common/table — the progress/metrics companion
 * the bench harnesses append after their figure tables.
 */
void printSweepSummary(const SweepSummary &summary);
void printSweepSummary(const SweepSummary &summary, std::FILE *out);

} // namespace bsim

#endif // BSIM_SIM_SWEEP_HH
