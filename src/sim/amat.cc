#include "sim/amat.hh"

#include <algorithm>

#include "common/strings.hh"
#include "timing/decoder_model.hh"

namespace bsim {

std::string
AmatResult::toString() const
{
    return strprintf("access=%.3fns clock=%.3fns miss=%.3f%% "
                     "amat=%.3fns",
                     accessTimeNs, clockNs, 100.0 * missRate, amatNs);
}

AmatResult
evaluateAmat(const CacheConfig &config, double miss_rate,
             double slow_hit_fraction, const AmatParams &params)
{
    AmatResult r;
    switch (config.kind) {
      case CacheKind::SetAssoc:
        r.accessTimeNs = cacheAccessTime(config.sizeBytes,
                                         config.lineBytes, config.ways);
        break;
      case CacheKind::Victim:
      case CacheKind::ColumnAssoc:
      case CacheKind::BCache:
      case CacheKind::XorDm:
        // Direct-mapped array access time; B-Cache by the Table 1 slack
        // argument, victim/column because the primary probe is the
        // plain direct-mapped array.
        r.accessTimeNs =
            cacheAccessTime(config.sizeBytes, config.lineBytes, 1);
        break;
      case CacheKind::Skewed:
        r.accessTimeNs = cacheAccessTime(config.sizeBytes,
                                         config.lineBytes, 2);
        break;
      case CacheKind::PartialMatch:
        // The PAD comparison replaces the full-tag way select, so the
        // first cycle runs near direct-mapped speed; mispredictions pay
        // a second cycle (the slow-hit fraction).
        r.accessTimeNs =
            cacheAccessTime(config.sizeBytes, config.lineBytes, 1);
        break;
      case CacheKind::Hac: {
        // Serial subarray decode + wide CAM search (Section 6.7).
        const std::uint32_t ways = static_cast<std::uint32_t>(
            config.hacSubarrayBytes / config.lineBytes);
        r.accessTimeNs =
            cacheAccessTime(config.sizeBytes, config.lineBytes, 1) +
            camSearchDelay(26, ways);
        break;
      }
    }

    r.clockNs = std::max(params.coreFloorNs, r.accessTimeNs);
    r.missRate = miss_rate;
    r.slowHitFraction = slow_hit_fraction;
    r.missPenaltyCycles = params.missPenaltyCycles;
    const double cycles =
        1.0 + (1.0 - miss_rate) * slow_hit_fraction +
        miss_rate * double(params.missPenaltyCycles);
    r.amatNs = r.clockNs * cycles;
    return r;
}

} // namespace bsim
