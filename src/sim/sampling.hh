/**
 * @file
 * Sampled-simulation support: systematic interval sampling over a trace
 * or synthetic stream (SMARTS-style). A SamplePlan selects measured
 * units of U records every P records, each preceded by a W-record
 * functional-warmup window that primes tag state without being counted.
 * Per-unit integer sums feed common/stats' StratifiedEstimator, which
 * turns them into a miss-ratio point estimate with a standard error and
 * a 95% confidence interval across units.
 *
 * Determinism: every sampling unit is simulated independently from a
 * cold cache (warmup included), so a unit's sums depend only on (trace,
 * config, plan, unit index) — never on which shard or thread ran it.
 * Sharded sampled replay partitions *units* (not records) across jobs
 * and concatenates the per-unit sums in unit order, making the merged
 * result bit-identical at any --jobs value or shard count.
 */

#ifndef BSIM_SIM_SAMPLING_HH
#define BSIM_SIM_SAMPLING_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace bsim {

/** One systematic sampling schedule: U records every P, W of warmup. */
struct SamplePlan
{
    /** Measured records per sampling unit (U >= 1). */
    std::uint64_t unitLen = 0;
    /** Records between unit starts (P >= U); unit k starts at k*P. */
    std::uint64_t period = 0;
    /** Functional-warmup records replayed (unmeasured) before a unit. */
    std::uint64_t warmup = 0;

    /** Units the plan yields over a population of @p records. */
    std::uint64_t unitsFor(std::uint64_t records) const;

    /** "U:P:W" — the --sample spelling, for labels and reports. */
    std::string toString() const;
};

/**
 * Parse a "U:P[:W]" spec (the --sample argument). Fatal on malformed
 * input, U == 0, or P < U (overlapping units would double-count).
 */
SamplePlan parseSamplePlan(const std::string &spec);

/**
 * Strip `--sample U:P[:W]` (or `--sample=U:P[:W]`) out of argv, exactly
 * like consumeJobsFlag does for --jobs, so every fig/table harness gets
 * sampling for free. With no flag present, a non-empty BSIM_SAMPLE
 * environment variable is parsed instead; nullopt means "run full".
 */
std::optional<SamplePlan> consumeSampleFlag(int &argc, char **argv);

/** One measured unit's integer sums — the estimator's raw material. */
struct SampleUnitSums
{
    std::uint64_t unit = 0; ///< unit index on the plan's grid
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/**
 * A sampled run's full evidence: the plan, the population size, and the
 * per-unit sums in ascending unit order. Shard results concatenate via
 * operator+= (shards own contiguous unit ranges, so shard order is unit
 * order); estimate() re-derives the estimate from the integer sums, so
 * merged and single-job runs agree bit for bit.
 */
struct SampledStats
{
    SamplePlan plan;
    /** Records in the full population the units were drawn from. */
    std::uint64_t records = 0;
    std::vector<SampleUnitSums> units;

    /** Measured records across all units. */
    std::uint64_t sampledRecords() const;

    /** Ratio estimate with stderr/CI, via common/stats. */
    SampleEstimate estimate() const;

    /** Concatenate another shard's units (ascending-unit invariant). */
    SampledStats &operator+=(const SampledStats &other);
};

} // namespace bsim

#endif // BSIM_SIM_SAMPLING_HH
