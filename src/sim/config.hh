/**
 * @file
 * Simulation-level configuration: the named L1 configuration sets the
 * figure harnesses sweep over, the shared hierarchy defaults, and the
 * `--jobs` plumbing.
 *
 * The declarative cache description itself (CacheKind, CacheConfig, the
 * spec grammar and registry) lives in cache/cache_spec.hh; this header
 * re-exports it so existing `#include "sim/config.hh"` consumers keep
 * compiling unchanged. CacheConfig::build()/bcacheParams() are *defined*
 * here in sim/config.cc — the translation unit that links every variant
 * library — keeping the cache/ layer free of bcache/ and alt/
 * dependencies.
 */

#ifndef BSIM_SIM_CONFIG_HH
#define BSIM_SIM_CONFIG_HH

#include <vector>

#include "bcache/bcache_params.hh"
#include "cache/cache_spec.hh"
#include "cache/hierarchy.hh"

namespace bsim {

/**
 * The shared outer-hierarchy defaults of the paper's Table 4 — a 256 kB
 * 4-way L2 with 128 B lines behind a 100-cycle main memory. Every
 * harness and runner that composes "L1 under the standard L2" derives
 * from this one constant (HierarchyParams' own member initializers are
 * the single source of the numbers).
 */
inline constexpr HierarchyParams kTable4Hierarchy{};

/**
 * The nine configurations of Figures 4/5: 2/4/8/32-way, victim16, and the
 * B-Cache at MF in {2,4,8,16} with BAS = 8 (all LRU).
 */
std::vector<CacheConfig> figure4Configs(std::uint64_t size_bytes);

/** The twelve configurations of Figure 12 (B-Cache MF x BAS grid). */
std::vector<CacheConfig> figure12Configs(std::uint64_t size_bytes);

/**
 * Worker-thread count for the sweep engine: the BSIM_JOBS environment
 * variable if set and valid, else the host's hardware concurrency,
 * else 1.
 */
unsigned defaultJobs();

/**
 * Consume a `--jobs N` (or `--jobs=N`) flag from argv, compacting the
 * remaining arguments so positional parsing is undisturbed. Returns 0
 * when the flag is absent (callers then fall back to defaultJobs());
 * fatal on a malformed value.
 */
unsigned consumeJobsFlag(int &argc, char **argv);

} // namespace bsim

#endif // BSIM_SIM_CONFIG_HH
