/**
 * @file
 * Named L1 cache configurations: the declarative descriptions the
 * benchmark harnesses sweep over, with a factory that instantiates the
 * matching cache model.
 */

#ifndef BSIM_SIM_CONFIG_HH
#define BSIM_SIM_CONFIG_HH

#include <memory>
#include <string>
#include <vector>

#include "bcache/bcache_params.hh"
#include "cache/base_cache.hh"

namespace bsim {

/** Which organisation a CacheConfig describes. */
enum class CacheKind : std::uint8_t {
    SetAssoc,     ///< includes the direct-mapped baseline (ways = 1)
    Victim,       ///< direct-mapped + victim buffer
    BCache,       ///< the paper's contribution
    ColumnAssoc,  ///< related work (Section 7.1)
    Skewed,       ///< related work (Section 7.1)
    Hac,          ///< highly associative CAM-tag cache (Section 6.7)
    XorDm,        ///< XOR-mapped direct-mapped (indexing optimisation)
    PartialMatch, ///< way-predicting SA cache (Section 7.2)
};

struct CacheConfig
{
    CacheKind kind = CacheKind::SetAssoc;
    std::string label;
    std::uint64_t sizeBytes = 16 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t ways = 1;
    ReplPolicyKind repl = ReplPolicyKind::LRU;
    /** Honoured by SetAssoc and BCache kinds; others are write-back. */
    WritePolicy writePolicy = WritePolicy::WriteBackAllocate;
    std::size_t victimEntries = 16;
    std::uint32_t mf = 8;   ///< B-Cache only
    std::uint32_t bas = 8;  ///< B-Cache only
    std::uint64_t hacSubarrayBytes = 1024;
    unsigned partialBits = 5; ///< PartialMatch only

    /** Instantiate the described cache. */
    std::unique_ptr<BaseCache> build(const std::string &name,
                                     Cycles hit_latency = 1,
                                     MemLevel *next = nullptr) const;

    /** B-Cache parameter block (kind must be BCache). */
    BCacheParams bcacheParams() const;

    // ---- factory helpers ----
    static CacheConfig directMapped(std::uint64_t size,
                                    std::uint32_t line = 32);
    static CacheConfig setAssoc(std::uint64_t size, std::uint32_t ways,
                                ReplPolicyKind repl = ReplPolicyKind::LRU,
                                std::uint32_t line = 32);
    static CacheConfig victim(std::uint64_t size,
                              std::size_t entries = 16,
                              std::uint32_t line = 32);
    static CacheConfig bcache(std::uint64_t size, std::uint32_t mf,
                              std::uint32_t bas,
                              ReplPolicyKind repl = ReplPolicyKind::LRU,
                              std::uint32_t line = 32);
    static CacheConfig columnAssoc(std::uint64_t size,
                                   std::uint32_t line = 32);
    static CacheConfig skewed(std::uint64_t size, std::uint32_t line = 32);
    static CacheConfig hac(std::uint64_t size,
                           std::uint64_t subarray = 1024,
                           std::uint32_t line = 32);
    static CacheConfig xorDm(std::uint64_t size, std::uint32_t line = 32);
    static CacheConfig partialMatch(std::uint64_t size,
                                    std::uint32_t ways = 2,
                                    unsigned partial_bits = 5,
                                    std::uint32_t line = 32);
};

/**
 * The nine configurations of Figures 4/5: 2/4/8/32-way, victim16, and the
 * B-Cache at MF in {2,4,8,16} with BAS = 8 (all LRU).
 */
std::vector<CacheConfig> figure4Configs(std::uint64_t size_bytes);

/** The twelve configurations of Figure 12 (B-Cache MF x BAS grid). */
std::vector<CacheConfig> figure12Configs(std::uint64_t size_bytes);

/**
 * Worker-thread count for the sweep engine: the BSIM_JOBS environment
 * variable if set and valid, else the host's hardware concurrency,
 * else 1.
 */
unsigned defaultJobs();

/**
 * Consume a `--jobs N` (or `--jobs=N`) flag from argv, compacting the
 * remaining arguments so positional parsing is undisturbed. Returns 0
 * when the flag is absent (callers then fall back to defaultJobs());
 * fatal on a malformed value.
 */
unsigned consumeJobsFlag(int &argc, char **argv);

} // namespace bsim

#endif // BSIM_SIM_CONFIG_HH
