#include "sim/runner.hh"

#include <cstdlib>

#include "cache/victim_cache.hh"
#include "common/logging.hh"
#include "power/cacti_lite.hh"
#include "sim/session.hh"

namespace bsim {

namespace {

std::uint64_t
envCount(const char *var, std::uint64_t fallback)
{
    const char *v = std::getenv(var);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || n == 0) {
        bsim_warn("ignoring bad ", var, "='", v, "'");
        return fallback;
    }
    return n;
}

} // namespace

std::uint64_t
defaultAccesses(std::uint64_t fallback)
{
    return envCount("BSIM_ACCESSES", fallback);
}

std::size_t
defaultBatchLen()
{
    // BSIM_BATCH=0 (or 1) falls back to the per-access path; any other
    // value is the batch length. Unlike envCount, 0 is meaningful here.
    const char *v = std::getenv("BSIM_BATCH");
    if (!v || !*v)
        return kDefaultBatchLen;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || *end) {
        bsim_warn("ignoring bad BSIM_BATCH='", v, "'");
        return kDefaultBatchLen;
    }
    return static_cast<std::size_t>(n);
}

std::uint64_t
defaultUops(std::uint64_t fallback)
{
    return envCount("BSIM_UOPS", fallback);
}

std::unique_ptr<StatsObserver>
attachObserver(BaseCache &cache, const ObserverConfig &observe)
{
    if (!observe.enabled || !kObserversEnabled)
        return nullptr;
    auto obs = std::make_unique<StatsObserver>(
        cache.setUsage().usage().size(), observe);
    cache.setCacheObserver(obs.get());
    return obs;
}

std::optional<ObserverReport>
harvestObserver(const StatsObserver *obs, BaseCache &cache)
{
    if (!obs)
        return std::nullopt;
    ObserverReport rep = obs->report();
    if (auto *bc = dynamic_cast<BCache *>(&cache))
        rep.pdOccupancy = bc->groupOccupancy();
    return rep;
}

MissRateResult
runMissRateOn(AccessStream &stream, const CacheConfig &config,
              std::uint64_t accesses, const std::string &workload_label,
              const ObserverConfig &observe)
{
    return Session(stream, config, accesses, workload_label, observe)
        .run();
}

MissRateResult
runMissRateSampledOn(AccessStream &stream, const CacheConfig &config,
                     std::uint64_t accesses, const SamplePlan &plan,
                     const std::string &workload_label)
{
    return Session(stream, config, accesses, workload_label)
        .runSampled(plan);
}

MissRateResult
runMissRateSampled(const std::string &workload_name, StreamSide side,
                   const CacheConfig &config, std::uint64_t accesses,
                   const SamplePlan &plan, std::uint64_t seed)
{
    SpecWorkload wl = makeSpecWorkload(workload_name, seed);
    AccessStream &stream =
        side == StreamSide::Inst ? *wl.inst : *wl.data;
    return runMissRateSampledOn(stream, config, accesses, plan,
                                workload_name);
}

MissRateResult
runMissRate(const std::string &workload_name, StreamSide side,
            const CacheConfig &config, std::uint64_t accesses,
            std::uint64_t seed, const ObserverConfig &observe)
{
    SpecWorkload wl = makeSpecWorkload(workload_name, seed);
    AccessStream &stream =
        side == StreamSide::Inst ? *wl.inst : *wl.data;
    return runMissRateOn(stream, config, accesses, workload_name,
                         observe);
}

TimedResult
runTimed(const std::string &workload_name, const CacheConfig &config,
         std::uint64_t uops, std::uint64_t seed,
         const HierarchyParams &hierarchy_params)
{
    CacheHierarchy hier(hierarchy_params);
    hier.setL1I(config.build("L1I", 1, nullptr));
    hier.setL1D(config.build("L1D", 1, nullptr));

    SpecWorkload wl = makeSpecWorkload(workload_name, seed);
    SyntheticProgram program(std::move(wl), seed ^ 0xc0ffee);
    OooCore core(CoreParams{}, hier);
    const CpuResult cpu = core.run(program, uops);

    TimedResult r;
    r.workload = workload_name;
    r.config = config.label;
    r.cpu = cpu;
    r.l1i = hier.l1i().stats();
    r.l1d = hier.l1d().stats();
    r.l2 = hier.l2().stats();

    ActivityCounts &a = r.activity;
    a.l1iAccesses = r.l1i.accesses;
    a.l1iMisses = r.l1i.misses;
    a.l1dAccesses = r.l1d.accesses;
    a.l1dMisses = r.l1d.misses;
    a.l2Accesses = r.l2.accesses + r.l1i.writebacks + r.l1d.writebacks;
    a.l2Misses = r.l2.misses;
    a.offchipAccesses = hier.memory().totalAccesses();
    a.cycles = cpu.cycles;
    if (auto *vi = dynamic_cast<VictimCache *>(&hier.l1i()))
        a.victimProbes += vi->victimProbes();
    if (auto *vd = dynamic_cast<VictimCache *>(&hier.l1d()))
        a.victimProbes += vd->victimProbes();
    if (auto *bi = dynamic_cast<BCache *>(&hier.l1i()))
        a.pdPredictedMisses += bi->pdStats().pdMiss;
    if (auto *bd = dynamic_cast<BCache *>(&hier.l1d()))
        a.pdPredictedMisses += bd->pdStats().pdMiss;
    return r;
}

EnergyRates
energyRatesFor(const CacheConfig &config, PicoJoules static_per_cycle)
{
    // The baseline L1 anchors the off-chip energy (100x, Section 6.2).
    CacheOrg base_org;
    base_org.sizeBytes = config.sizeBytes;
    base_org.lineBytes = config.lineBytes;
    base_org.ways = 1;
    const PicoJoules base_l1 =
        CactiLite::conventional(base_org).total();

    EnergyRates r;
    switch (config.kind) {
      case CacheKind::SetAssoc: {
        CacheOrg org = base_org;
        org.ways = config.ways;
        r.l1iAccess = r.l1dAccess = CactiLite::conventional(org).total();
        break;
      }
      case CacheKind::XorDm:
        // The XOR stage is a handful of gates; per-access energy is the
        // direct-mapped array's.
        r.l1iAccess = r.l1dAccess = base_l1;
        break;
      case CacheKind::Victim:
        r.l1iAccess = r.l1dAccess = base_l1;
        r.victimProbe = CactiLite::victimBufferProbeEnergy(
            config.victimEntries, config.lineBytes);
        break;
      case CacheKind::BCache: {
        const CacheEnergyBreakdown e =
            CactiLite::bcache(config.bcacheParams());
        r.l1iAccess = r.l1dAccess = e.total();
        // A PD-predicted miss skips the SRAM array reads; only the CAM
        // search and decode energy is spent.
        r.pdMissRefund = e.tagSense + e.tagBitWordline + e.dataSense +
                         e.dataBitWordline + e.dataOther;
        break;
      }
      case CacheKind::ColumnAssoc:
      case CacheKind::Skewed:
      case CacheKind::PartialMatch: {
        CacheOrg org = base_org;
        org.ways = config.kind == CacheKind::ColumnAssoc ? 1
                                                         : config.ways;
        r.l1iAccess = r.l1dAccess = CactiLite::conventional(org).total();
        break;
      }
      case CacheKind::Hac: {
        CacheOrg org = base_org;
        org.ways = static_cast<std::uint32_t>(config.hacSubarrayBytes /
                                              config.lineBytes);
        // CAM tag search replaces the tag read; approximate with the
        // conventional organisation plus a full-tag CAM search.
        CacheEnergyBreakdown e = CactiLite::conventional(org);
        e.camSearch = CactiLite::camSearchEnergy(26, org.ways);
        r.l1iAccess = r.l1dAccess = e.total();
        break;
      }
    }

    CacheOrg l2_org;
    l2_org.sizeBytes = kTable4Hierarchy.l2SizeBytes;
    l2_org.lineBytes = kTable4Hierarchy.l2LineBytes;
    l2_org.ways = kTable4Hierarchy.l2Ways;
    l2_org.dataSubarrays = 16;
    l2_org.tagSubarrays = 16;
    r.l2Access = CactiLite::conventional(l2_org).total();
    r.l2Refill = 0.5 * r.l2Access;
    r.l1Refill = 0.5 * r.l1dAccess;
    r.offchipAccess = 100.0 * base_l1;
    r.staticPerCycle = static_per_cycle;
    return r;
}

} // namespace bsim
