#include "sim/runner.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "cache/victim_cache.hh"
#include "common/logging.hh"
#include "power/cacti_lite.hh"

namespace bsim {

namespace {

std::uint64_t
envCount(const char *var, std::uint64_t fallback)
{
    const char *v = std::getenv(var);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || n == 0) {
        bsim_warn("ignoring bad ", var, "='", v, "'");
        return fallback;
    }
    return n;
}

} // namespace

std::uint64_t
defaultAccesses(std::uint64_t fallback)
{
    return envCount("BSIM_ACCESSES", fallback);
}

std::size_t
defaultBatchLen()
{
    // BSIM_BATCH=0 (or 1) falls back to the per-access path; any other
    // value is the batch length. Unlike envCount, 0 is meaningful here.
    const char *v = std::getenv("BSIM_BATCH");
    if (!v || !*v)
        return kDefaultBatchLen;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || *end) {
        bsim_warn("ignoring bad BSIM_BATCH='", v, "'");
        return kDefaultBatchLen;
    }
    return static_cast<std::size_t>(n);
}

std::uint64_t
defaultUops(std::uint64_t fallback)
{
    return envCount("BSIM_UOPS", fallback);
}

std::unique_ptr<StatsObserver>
attachObserver(BaseCache &cache, const ObserverConfig &observe)
{
    if (!observe.enabled || !kObserversEnabled)
        return nullptr;
    auto obs = std::make_unique<StatsObserver>(
        cache.setUsage().usage().size(), observe);
    cache.setCacheObserver(obs.get());
    return obs;
}

std::optional<ObserverReport>
harvestObserver(const StatsObserver *obs, BaseCache &cache)
{
    if (!obs)
        return std::nullopt;
    ObserverReport rep = obs->report();
    if (auto *bc = dynamic_cast<BCache *>(&cache))
        rep.pdOccupancy = bc->groupOccupancy();
    return rep;
}

MissRateResult
runMissRateOn(AccessStream &stream, const CacheConfig &config,
              std::uint64_t accesses, const std::string &workload_label,
              const ObserverConfig &observe)
{
    auto cache = config.build(config.label, 1, nullptr);
    auto obs = attachObserver(*cache, observe);
    const std::size_t batch_len = defaultBatchLen();
    if (batch_len <= 1) {
        for (std::uint64_t i = 0; i < accesses; ++i)
            cache->access(stream.next());
    } else if (stream.hasSpanBatches()) {
        // Zero-copy hot loop for trace-backed streams: the stream hands
        // out views of its own chunk buffer (the mmap itself for
        // uncompressed BST2), which go straight into accessBatch with no
        // per-record copy. Batch boundaries differ from the copying path
        // (spans stop at chunk edges) but results are bit-identical —
        // the accessBatch contract (verify/batch_equiv) is boundary-
        // independent. An empty span means the bounded, non-cycling
        // trace ran out before @p accesses; the run ends there.
        std::vector<AccessOutcome> outs(batch_len);
        for (std::uint64_t left = accesses; left > 0;) {
            const std::span<const MemAccess> s = stream.nextSpan(
                static_cast<std::size_t>(
                    std::min<std::uint64_t>(batch_len, left)));
            if (s.empty())
                break;
            cache->accessBatch(s, outs.data());
            left -= s.size();
        }
    } else {
        // Hot loop of every miss-rate experiment: stream and cache both
        // work in fixed-size batches (bit-identical to the per-access
        // path — see MemLevel::accessBatch).
        std::vector<MemAccess> reqs(batch_len);
        std::vector<AccessOutcome> outs(batch_len);
        for (std::uint64_t left = accesses; left > 0;) {
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(batch_len, left));
            stream.nextBatch(reqs.data(), n);
            cache->accessBatch({reqs.data(), n}, outs.data());
            left -= n;
        }
    }

    MissRateResult r;
    r.workload = workload_label;
    r.config = config.label;
    r.stats = cache->stats();
    r.balance = analyzeBalance(cache->setUsage());
    if (auto *bc = dynamic_cast<BCache *>(cache.get()))
        r.pd = bc->pdStats();
    if (auto *vc = dynamic_cast<VictimCache *>(cache.get()))
        r.victimHits = vc->victimHits();
    r.observer = harvestObserver(obs.get(), *cache);
    return r;
}

MissRateResult
runMissRateSampledOn(AccessStream &stream, const CacheConfig &config,
                     std::uint64_t accesses, const SamplePlan &plan,
                     const std::string &workload_label)
{
    if (accesses == 0)
        bsim_fatal("sampled run needs a nonzero population (accesses)");
    const std::uint64_t n_units = plan.unitsFor(accesses);
    const std::size_t batch_len =
        std::max<std::size_t>(defaultBatchLen(), 1);
    std::vector<MemAccess> reqs(batch_len);
    std::vector<AccessOutcome> outs(batch_len);

    SampledStats sampled;
    sampled.plan = plan;
    sampled.records = accesses;
    sampled.units.reserve(static_cast<std::size_t>(n_units));
    CacheStats total;

    // One forward pass: streams cannot seek, so records between units
    // are pulled and discarded (generation cost only); warmup and
    // measured records are fed through the batched hot path.
    std::uint64_t pos = 0;
    auto pump = [&](std::uint64_t n, BaseCache *cache) {
        while (n > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(n, batch_len));
            std::size_t got = want;
            if (stream.hasSpanBatches()) {
                std::span<const MemAccess> s = stream.nextSpan(want);
                s = s.first(std::min(s.size(), want));
                if (s.empty())
                    bsim_fatal("stream '", workload_label,
                               "' exhausted at record ", pos,
                               " of a declared ", accesses,
                               "-record population");
                if (cache)
                    cache->accessBatch(s, outs.data());
                got = s.size();
            } else {
                stream.nextBatch(reqs.data(), want);
                if (cache)
                    cache->accessBatch({reqs.data(), want}, outs.data());
            }
            pos += got;
            n -= got;
        }
    };

    for (std::uint64_t k = 0; k < n_units; ++k) {
        const std::uint64_t s0 = k * plan.period;
        const std::uint64_t e =
            std::min(s0 + plan.unitLen, accesses);
        // Clamp the warmup window so it never reaches back into records
        // already consumed (the previous unit, or the stream start).
        const std::uint64_t w0 =
            std::max(s0 >= plan.warmup ? s0 - plan.warmup : 0, pos);
        pump(w0 - pos, nullptr);
        auto cache = config.build(config.label, 1, nullptr);
        pump(s0 - pos, cache.get());
        const CacheStats after_warmup = cache->stats();
        pump(e - pos, cache.get());
        CacheStats delta = cache->stats();
        delta -= after_warmup;
        total += delta;
        sampled.units.push_back({k, delta.accesses, delta.misses});
    }

    MissRateResult r;
    r.workload = workload_label;
    r.config = config.label;
    r.stats = total;
    r.sampled = std::move(sampled);
    return r;
}

MissRateResult
runMissRateSampled(const std::string &workload_name, StreamSide side,
                   const CacheConfig &config, std::uint64_t accesses,
                   const SamplePlan &plan, std::uint64_t seed)
{
    SpecWorkload wl = makeSpecWorkload(workload_name, seed);
    AccessStream &stream =
        side == StreamSide::Inst ? *wl.inst : *wl.data;
    return runMissRateSampledOn(stream, config, accesses, plan,
                                workload_name);
}

MissRateResult
runMissRate(const std::string &workload_name, StreamSide side,
            const CacheConfig &config, std::uint64_t accesses,
            std::uint64_t seed, const ObserverConfig &observe)
{
    SpecWorkload wl = makeSpecWorkload(workload_name, seed);
    AccessStream &stream =
        side == StreamSide::Inst ? *wl.inst : *wl.data;
    return runMissRateOn(stream, config, accesses, workload_name,
                         observe);
}

TimedResult
runTimed(const std::string &workload_name, const CacheConfig &config,
         std::uint64_t uops, std::uint64_t seed,
         const HierarchyParams &hierarchy_params)
{
    CacheHierarchy hier(hierarchy_params);
    hier.setL1I(config.build("L1I", 1, nullptr));
    hier.setL1D(config.build("L1D", 1, nullptr));

    SpecWorkload wl = makeSpecWorkload(workload_name, seed);
    SyntheticProgram program(std::move(wl), seed ^ 0xc0ffee);
    OooCore core(CoreParams{}, hier);
    const CpuResult cpu = core.run(program, uops);

    TimedResult r;
    r.workload = workload_name;
    r.config = config.label;
    r.cpu = cpu;
    r.l1i = hier.l1i().stats();
    r.l1d = hier.l1d().stats();
    r.l2 = hier.l2().stats();

    ActivityCounts &a = r.activity;
    a.l1iAccesses = r.l1i.accesses;
    a.l1iMisses = r.l1i.misses;
    a.l1dAccesses = r.l1d.accesses;
    a.l1dMisses = r.l1d.misses;
    a.l2Accesses = r.l2.accesses + r.l1i.writebacks + r.l1d.writebacks;
    a.l2Misses = r.l2.misses;
    a.offchipAccesses = hier.memory().totalAccesses();
    a.cycles = cpu.cycles;
    if (auto *vi = dynamic_cast<VictimCache *>(&hier.l1i()))
        a.victimProbes += vi->victimProbes();
    if (auto *vd = dynamic_cast<VictimCache *>(&hier.l1d()))
        a.victimProbes += vd->victimProbes();
    if (auto *bi = dynamic_cast<BCache *>(&hier.l1i()))
        a.pdPredictedMisses += bi->pdStats().pdMiss;
    if (auto *bd = dynamic_cast<BCache *>(&hier.l1d()))
        a.pdPredictedMisses += bd->pdStats().pdMiss;
    return r;
}

EnergyRates
energyRatesFor(const CacheConfig &config, PicoJoules static_per_cycle)
{
    // The baseline L1 anchors the off-chip energy (100x, Section 6.2).
    CacheOrg base_org;
    base_org.sizeBytes = config.sizeBytes;
    base_org.lineBytes = config.lineBytes;
    base_org.ways = 1;
    const PicoJoules base_l1 =
        CactiLite::conventional(base_org).total();

    EnergyRates r;
    switch (config.kind) {
      case CacheKind::SetAssoc: {
        CacheOrg org = base_org;
        org.ways = config.ways;
        r.l1iAccess = r.l1dAccess = CactiLite::conventional(org).total();
        break;
      }
      case CacheKind::XorDm:
        // The XOR stage is a handful of gates; per-access energy is the
        // direct-mapped array's.
        r.l1iAccess = r.l1dAccess = base_l1;
        break;
      case CacheKind::Victim:
        r.l1iAccess = r.l1dAccess = base_l1;
        r.victimProbe = CactiLite::victimBufferProbeEnergy(
            config.victimEntries, config.lineBytes);
        break;
      case CacheKind::BCache: {
        const CacheEnergyBreakdown e =
            CactiLite::bcache(config.bcacheParams());
        r.l1iAccess = r.l1dAccess = e.total();
        // A PD-predicted miss skips the SRAM array reads; only the CAM
        // search and decode energy is spent.
        r.pdMissRefund = e.tagSense + e.tagBitWordline + e.dataSense +
                         e.dataBitWordline + e.dataOther;
        break;
      }
      case CacheKind::ColumnAssoc:
      case CacheKind::Skewed:
      case CacheKind::PartialMatch: {
        CacheOrg org = base_org;
        org.ways = config.kind == CacheKind::ColumnAssoc ? 1
                                                         : config.ways;
        r.l1iAccess = r.l1dAccess = CactiLite::conventional(org).total();
        break;
      }
      case CacheKind::Hac: {
        CacheOrg org = base_org;
        org.ways = static_cast<std::uint32_t>(config.hacSubarrayBytes /
                                              config.lineBytes);
        // CAM tag search replaces the tag read; approximate with the
        // conventional organisation plus a full-tag CAM search.
        CacheEnergyBreakdown e = CactiLite::conventional(org);
        e.camSearch = CactiLite::camSearchEnergy(26, org.ways);
        r.l1iAccess = r.l1dAccess = e.total();
        break;
      }
    }

    CacheOrg l2_org;
    l2_org.sizeBytes = 256 * 1024;
    l2_org.lineBytes = 128;
    l2_org.ways = 4;
    l2_org.dataSubarrays = 16;
    l2_org.tagSubarrays = 16;
    r.l2Access = CactiLite::conventional(l2_org).total();
    r.l2Refill = 0.5 * r.l2Access;
    r.l1Refill = 0.5 * r.l1dAccess;
    r.offchipAccess = 100.0 * base_l1;
    r.staticPerCycle = static_per_cycle;
    return r;
}

} // namespace bsim
