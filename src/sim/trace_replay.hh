/**
 * @file
 * Trace-driven experiment runners over the streaming ingestion layer
 * (workload/trace_reader.hh): single-pass replay of a trace window in
 * O(chunk) resident memory, and sharded parallel replay on the sweep
 * engine where each job owns a chunk range of the file.
 *
 * Sharded replay semantics: every shard starts from a cold cache, so the
 * merged counters are those of N independent cold-start replays — the
 * standard trace-sampling approximation, NOT bit-identical to one serial
 * pass over the whole file. What *is* bit-identical is the sharding
 * itself: per-shard results and their merge depend only on the shard
 * boundaries, never on --jobs/thread count (the sweep engine's
 * determinism contract). docs/TRACES.md discusses when the approximation
 * is acceptable.
 */

#ifndef BSIM_SIM_TRACE_REPLAY_HH
#define BSIM_SIM_TRACE_REPLAY_HH

#include <vector>

#include "sim/session.hh" // TraceReplayOptions + the Session these wrap
#include "sim/sweep.hh"
#include "workload/trace_reader.hh"

namespace bsim {

/**
 * Replay one window of a trace file through a standalone cache built
 * from @p config — the trace-driven analogue of runMissRate(). The
 * window is streamed: only one chunk is resident, and on the
 * uncompressed-BST2 path the batched loop reads records straight out of
 * the mmap with no per-record copy.
 */
MissRateResult runTraceReplay(const std::string &path,
                              const CacheConfig &config,
                              const TraceShard &shard = {},
                              const TraceReplayOptions &options = {});

/**
 * Split @p path into at most @p shards contiguous record ranges, aligned
 * to the file's chunk framing for BST2 (each shard owns whole chunks).
 * Fewer shards come back when the trace is too small. Fatal for text
 * traces, whose record count is unknown without a full scan — convert to
 * .bst first (docs/TRACES.md cookbook).
 */
std::vector<TraceShard> shardTrace(const std::string &path,
                                   unsigned shards);

/** Sum the per-shard counters (cold-start-per-shard semantics above). */
CacheStats mergeShardStats(const std::vector<MissRateResult> &shards);

/** Result of a sharded parallel replay. */
struct TraceSweepResult
{
    /** Per-shard results, in shard (= submission) order. */
    std::vector<MissRateResult> shards;
    /** Summed counters across shards. */
    CacheStats total;
    std::uint64_t victimHits = 0; ///< summed; victim configs only
    std::optional<PdStats> pd;    ///< summed; B-Cache configs only
    /** Merged observer state; present when the replay was observed. */
    std::optional<ObserverReport> observer;
    /** Concatenated per-unit sums; present for sampled replays. */
    std::optional<SampledStats> sampled;
    SweepSummary summary;
};

/**
 * Fold one shard's side counters — victimHits, PdStats and the observer
 * report — into the running totals. The single merge path for
 * everything next to CacheStats: runTraceSharded() folds shard results
 * through it, and the golden test replays shard windows serially and
 * folds them through the same helper to pin the equality.
 */
void mergeSideCounters(TraceSweepResult &total,
                       const MissRateResult &shard);

/**
 * Replay @p path across shardTrace(path, shards) jobs on the sweep
 * engine's worker pool. Per-shard results and the merged totals are
 * bit-identical at any SweepOptions::jobs value. @p replay applies to
 * every shard (maxAccesses caps each shard's window, not the total).
 */
TraceSweepResult runTraceSharded(const std::string &path,
                                 const CacheConfig &config,
                                 unsigned shards,
                                 const SweepOptions &options = {},
                                 const TraceReplayOptions &replay = {});

/**
 * Sampled replay of a trace (sim/sampling.hh): simulate only @p plan's
 * units over the population of min(trace records, options.maxAccesses
 * if set). Each unit runs a fresh cache — skipTo() jumps to the start
 * of its warmup window (O(1) through the BST2 chunk index), the warmup
 * primes tag state, a stats snapshot fences it off, and the measured
 * records land in per-unit sums. Units [first_unit, first_unit +
 * unit_count) are run; unit_count 0 means "through the last unit".
 * The result's `sampled` field carries the evidence; `stats` holds the
 * measured-only counter totals. options.observe must be disabled
 * (per-unit caches have no meaningful aggregate set usage). Fatal for
 * text traces, whose population is unknown without a full scan.
 */
MissRateResult runTraceSampled(const std::string &path,
                               const CacheConfig &config,
                               const SamplePlan &plan,
                               const TraceReplayOptions &options = {},
                               std::uint64_t first_unit = 0,
                               std::uint64_t unit_count = 0);

/**
 * Sampled replay fanned out on the sweep engine: @p shards jobs each
 * own a contiguous range of *unit indices* (never split records), so
 * concatenating their per-unit sums in shard order reproduces the
 * single-job unit list exactly — merged totals and the estimate are
 * bit-identical at any --jobs value and any shard count.
 */
TraceSweepResult runTraceSampledSharded(
    const std::string &path, const CacheConfig &config,
    const SamplePlan &plan, unsigned shards,
    const SweepOptions &options = {},
    const TraceReplayOptions &replay = {});

} // namespace bsim

#endif // BSIM_SIM_TRACE_REPLAY_HH
