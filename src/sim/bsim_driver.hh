/**
 * @file
 * The bsim driver: one command-line front end that runs any cache
 * organisation over any input — a named synthetic workload, a trace
 * file (streamed in O(chunk) memory via workload/trace_reader), a
 * sharded parallel trace replay on the sweep engine, or the timed
 * OOO-core model — and prints the standard statistics readout or JSON.
 *
 * The driver is a library function so several binaries can share it:
 * bench/bsim.cc wires the perf-telemetry hook (BENCH_perf.json) on top,
 * while examples/bsim_cli.cpp is the bare driver under its historical
 * name. docs/TRACES.md walks through the trace-facing flags.
 *
 * Usage (see usage() in the .cc for the authoritative text):
 *   bsim [--kind dm|setassoc|victim|bcache|column|skewed|hac|xor]
 *        [--size B] [--line B] [--ways N] [--mf N] [--bas N]
 *        [--repl lru|random|fifo|plru|nmru] [--write-policy wb|wt]
 *        [--workload NAME] [--side data|inst] [--seed N]
 *        [--trace FILE] [--shards N] [--jobs N] [--batch N]
 *        [--accesses N] [--timed] [--json] [--config FILE]
 *        [--trace-info FILE]
 */

#ifndef BSIM_SIM_BSIM_DRIVER_HH
#define BSIM_SIM_BSIM_DRIVER_HH

#include <functional>
#include <string>

#include "sim/sweep.hh"

namespace bsim {

/** Optional callbacks the host binary hangs on driver milestones. */
struct BsimHooks
{
    /**
     * Invoked after a sweep-backed run (--shards) with the config label
     * and the engine's aggregate metrics. bench/bsim.cc points this at
     * bench::reportSweepPerf so sharded replays land in the repo's
     * BENCH_perf.json trajectory; the bare examples/bsim_cli build
     * leaves it unset.
     */
    std::function<void(const std::string &configLabel,
                       const SweepSummary &summary)>
        onSweepDone;

    /**
     * `bsim --serve ...` / `bsim --connect ...` delegate here (the
     * serving layer, src/serve) before any other flag parsing.
     * bench/bsim.cc wires serve::serveMain / serve::connectMain;
     * binaries that leave them unset get a usage error pointing at a
     * serve-enabled build. serveMain receives argv with the --serve
     * flag removed; connectMain receives argv untouched (it parses
     * --connect itself).
     */
    std::function<int(int argc, char **argv)> serveMain;
    std::function<int(int argc, char **argv)> connectMain;
};

/**
 * The driver entry point: parse @p argv, run, print. Returns the
 * process exit code (0 on success; usage errors exit(2) directly and
 * malformed inputs are bsim_fatal, matching the library's conventions).
 */
int bsimMain(int argc, char **argv, const BsimHooks &hooks = {});

} // namespace bsim

#endif // BSIM_SIM_BSIM_DRIVER_HH
