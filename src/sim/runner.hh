/**
 * @file
 * Experiment runners shared by the benchmark harnesses and the examples:
 * standalone miss-rate runs over one address stream, and full timed runs
 * (OOO core + two-level hierarchy) that also collect the activity counts
 * the energy model consumes.
 */

#ifndef BSIM_SIM_RUNNER_HH
#define BSIM_SIM_RUNNER_HH

#include <optional>

#include "bcache/balance.hh"
#include "bcache/bcache.hh"
#include "cpu/ooo_core.hh"
#include "observe/observer.hh"
#include "power/energy_model.hh"
#include "sim/config.hh"
#include "sim/sampling.hh"
#include "workload/spec2k.hh"

namespace bsim {

/** Which of a workload's streams to run. */
enum class StreamSide : std::uint8_t { Inst, Data };

/** Workload seed behind every table in EXPERIMENTS.md. */
inline constexpr std::uint64_t kDefaultSeed = 0xb5eedULL;

/** Result of a standalone miss-rate run. */
struct MissRateResult
{
    std::string workload;
    std::string config;
    CacheStats stats;
    std::optional<PdStats> pd;       ///< B-Cache runs only
    std::uint64_t victimHits = 0;    ///< victim runs only
    BalanceReport balance;           ///< Table 7 classification
    /** Collected when the run was observed (ObserverConfig::enabled). */
    std::optional<ObserverReport> observer;
    /**
     * Present for sampled runs (sim/sampling.hh): the per-unit sums and
     * plan behind the estimate. `stats` then holds the measured-unit
     * counters only (warmup excluded), so stats.missRate() equals the
     * point estimate; balance/pd/victimHits are not collected (each unit
     * runs its own short-lived cache).
     */
    std::optional<SampledStats> sampled;

    double missRate() const { return stats.missRate(); }
};

/**
 * Run @p accesses of one side of a workload through a standalone cache
 * (misses are counted but not forwarded). When @p observe is enabled a
 * StatsObserver rides along and its report (with the B-Cache decoder
 * occupancy snapshot, if applicable) lands in MissRateResult::observer.
 */
MissRateResult runMissRate(const std::string &workload_name,
                           StreamSide side, const CacheConfig &config,
                           std::uint64_t accesses,
                           std::uint64_t seed = kDefaultSeed,
                           const ObserverConfig &observe = {});

/** As above but over an explicit stream (trace replay etc.). */
MissRateResult runMissRateOn(AccessStream &stream,
                             const CacheConfig &config,
                             std::uint64_t accesses,
                             const std::string &workload_label,
                             const ObserverConfig &observe = {});

/**
 * Sampled variant of runMissRate(): treat the first @p accesses of the
 * stream as the population and simulate only @p plan's units (warmup
 * included, unmeasured), each from a cold cache. The stream is consumed
 * in one forward pass — records between units are generated and
 * discarded, so the win over a full run is the cache-model cost, not the
 * generator cost (trace files additionally skip the discarded records
 * entirely; see runTraceSampled). When a warmup window would reach back
 * into the previous unit it is clamped to start after it.
 */
MissRateResult runMissRateSampled(const std::string &workload_name,
                                  StreamSide side,
                                  const CacheConfig &config,
                                  std::uint64_t accesses,
                                  const SamplePlan &plan,
                                  std::uint64_t seed = kDefaultSeed);

/** As above but over an explicit stream. */
MissRateResult runMissRateSampledOn(AccessStream &stream,
                                    const CacheConfig &config,
                                    std::uint64_t accesses,
                                    const SamplePlan &plan,
                                    const std::string &workload_label);

/** Result of a timed run. */
struct TimedResult
{
    std::string workload;
    std::string config;
    CpuResult cpu;
    CacheStats l1i;
    CacheStats l1d;
    CacheStats l2;
    ActivityCounts activity;
    double ipc() const { return cpu.ipc(); }
};

/**
 * Run @p uops through the OOO core (paper Table 4 processor) with both L1
 * caches built from @p config, a shared 256 kB L2 and 100-cycle memory.
 */
TimedResult runTimed(const std::string &workload_name,
                     const CacheConfig &config, std::uint64_t uops,
                     std::uint64_t seed = kDefaultSeed,
                     const HierarchyParams &hierarchy_params = {});

/** Per-event energy rates for @p config (CactiLite + paper methodology). */
EnergyRates energyRatesFor(const CacheConfig &config,
                           PicoJoules static_per_cycle = 0);

/** Environment-tunable run lengths (BSIM_ACCESSES / BSIM_UOPS). */
std::uint64_t defaultAccesses(std::uint64_t fallback = 2'000'000);
std::uint64_t defaultUops(std::uint64_t fallback = 1'000'000);

/**
 * Attach a StatsObserver to @p cache for the duration of a run. Returns
 * null (and attaches nothing) when @p observe is disabled or the hooks
 * were compiled out. Shared by runMissRateOn() and runTraceReplay().
 */
std::unique_ptr<StatsObserver> attachObserver(
    BaseCache &cache, const ObserverConfig &observe);

/**
 * Harvest the attached observer's report at end of run, folding in the
 * B-Cache decoder occupancy snapshot; nullopt when @p obs is null.
 */
std::optional<ObserverReport> harvestObserver(const StatsObserver *obs,
                                              BaseCache &cache);

/** Batch length runMissRateOn() feeds through MemLevel::accessBatch. */
inline constexpr std::size_t kDefaultBatchLen = 1024;

/**
 * Environment-tunable batch length (BSIM_BATCH): 0 or 1 selects the
 * per-access path (the two are bit-identical; the knob exists for
 * debugging and for the self-relative perf gate).
 */
std::size_t defaultBatchLen();

} // namespace bsim

#endif // BSIM_SIM_RUNNER_HH
