#include "sim/session.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cache/victim_cache.hh"
#include "common/logging.hh"
#include "observe/export.hh"

namespace bsim {

namespace {

std::string
replayLabel(const std::string &path, const TraceShard &shard)
{
    if (shard.firstRecord == 0 &&
        shard.recordCount == kUnknownRecordCount)
        return "trace:" + path;
    const std::string count =
        shard.recordCount == kUnknownRecordCount
            ? std::string("rest")
            : std::to_string(shard.recordCount);
    return "trace:" + path + "[" + std::to_string(shard.firstRecord) +
           "+" + count + ")";
}

} // namespace

Session::Session(AccessStream &stream, const CacheConfig &config,
                 std::uint64_t accesses, std::string label,
                 const ObserverConfig &observe, std::size_t batch_len)
    : config_(config),
      label_(std::move(label)),
      observe_(observe),
      maxAccesses_(accesses),
      batchLen_(batch_len),
      stream_(&stream)
{
}

Session::Session(std::string trace_path, const CacheConfig &config,
                 const TraceShard &shard,
                 const TraceReplayOptions &options)
    : config_(config),
      label_(replayLabel(trace_path, shard)),
      observe_(options.observe),
      maxAccesses_(options.maxAccesses),
      batchLen_(options.batchLen),
      tracePath_(std::move(trace_path)),
      shard_(shard),
      handle_(options.handle)
{
    if (handle_)
        bsim_assert(handle_->path() == tracePath_);
}

MissRateResult
Session::finish(BaseCache &cache, const StatsObserver *obs,
                bool collect_aggregates) const
{
    MissRateResult r;
    r.workload = label_;
    r.config = config_.label;
    r.stats = cache.stats();
    if (!collect_aggregates)
        return r; // sampled: per-unit caches, no aggregate state
    r.balance = analyzeBalance(cache.setUsage());
    if (auto *bc = dynamic_cast<BCache *>(&cache))
        r.pd = bc->pdStats();
    if (auto *vc = dynamic_cast<VictimCache *>(&cache))
        r.victimHits = vc->victimHits();
    r.observer = harvestObserver(obs, cache);
    return r;
}

MissRateResult
Session::run()
{
    auto cache = config_.build(config_.label, 1, nullptr);
    auto obs = attachObserver(*cache, observe_);
    const std::size_t batch_len =
        batchLen_ ? batchLen_ : defaultBatchLen();

    if (stream_) {
        AccessStream &stream = *stream_;
        const std::uint64_t accesses = maxAccesses_;
        if (batch_len <= 1) {
            for (std::uint64_t i = 0; i < accesses; ++i)
                cache->access(stream.next());
        } else if (stream.hasSpanBatches()) {
            // Zero-copy hot loop for trace-backed streams: the stream
            // hands out views of its own chunk buffer (the mmap itself
            // for uncompressed BST2), which go straight into
            // accessBatch with no per-record copy. Batch boundaries
            // differ from the copying path (spans stop at chunk edges)
            // but results are bit-identical — the accessBatch contract
            // (verify/batch_equiv) is boundary-independent. An empty
            // span means the bounded, non-cycling trace ran out before
            // @p accesses; the run ends there.
            std::vector<AccessOutcome> outs(batch_len);
            for (std::uint64_t left = accesses; left > 0;) {
                const std::span<const MemAccess> s = stream.nextSpan(
                    static_cast<std::size_t>(
                        std::min<std::uint64_t>(batch_len, left)));
                if (s.empty())
                    break;
                cache->accessBatch(s, outs.data());
                left -= s.size();
            }
        } else {
            // Hot loop of every miss-rate experiment: stream and cache
            // both work in fixed-size batches (bit-identical to the
            // per-access path — see MemLevel::accessBatch).
            std::vector<MemAccess> reqs(batch_len);
            std::vector<AccessOutcome> outs(batch_len);
            for (std::uint64_t left = accesses; left > 0;) {
                const std::size_t n = static_cast<std::size_t>(
                    std::min<std::uint64_t>(batch_len, left));
                stream.nextBatch(reqs.data(), n);
                cache->accessBatch({reqs.data(), n}, outs.data());
                left -= n;
            }
        }
        return finish(*cache, obs.get(), true);
    }

    TraceReaderPtr reader = handle_ ? openTraceReader(handle_, shard_)
                                    : openTraceReader(tracePath_, shard_);
    std::uint64_t left =
        maxAccesses_ ? maxAccesses_ : ~std::uint64_t{0};
    if (batch_len <= 1) {
        // Per-access path (BSIM_BATCH=0/1): still streamed one chunk at
        // a time, just replayed record by record.
        while (left > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, 65536));
            // Re-clamp what actually came back: nextSpan() promises at
            // most `want` records, but `left -= size` is an unsigned
            // subtraction that would wrap past maxAccesses if a reader
            // ever over-delivered, so don't let a buggy reader turn a
            // bounded replay into a (near-)unbounded one.
            std::span<const MemAccess> s = reader->nextSpan(want);
            s = s.first(std::min(s.size(), want));
            if (s.empty())
                break;
            for (const MemAccess &a : s)
                cache->access(a);
            left -= s.size();
        }
    } else {
        // Batched hot loop: spans come straight from the reader's chunk
        // buffer (the mmap itself for uncompressed BST2), so nothing is
        // copied per record on the way into accessBatch.
        std::vector<AccessOutcome> outs(batch_len);
        while (left > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(left, batch_len));
            // Same defensive clamp as above; it also keeps an
            // over-delivering reader from overrunning `outs`.
            std::span<const MemAccess> s = reader->nextSpan(want);
            s = s.first(std::min(s.size(), want));
            if (s.empty())
                break;
            cache->accessBatch(s, outs.data());
            left -= s.size();
        }
    }
    return finish(*cache, obs.get(), true);
}

std::uint64_t
Session::sampledPopulation() const
{
    if (stream_) {
        if (maxAccesses_ == 0)
            bsim_fatal(
                "sampled run needs a nonzero population (accesses)");
        return maxAccesses_;
    }
    const TraceInfo info =
        handle_ ? handle_->info() : probeTrace(tracePath_);
    if (info.recordCount == kUnknownRecordCount)
        bsim_fatal("cannot sample text trace '", tracePath_,
                   "': the record count is unknown without a full "
                   "scan; convert it to .bst first (docs/TRACES.md)");
    std::uint64_t records = info.recordCount;
    if (maxAccesses_)
        records = std::min(records, maxAccesses_);
    return records;
}

MissRateResult
Session::runSampled(const SamplePlan &plan, std::uint64_t first_unit,
                    std::uint64_t unit_count)
{
    if (observe_.enabled)
        bsim_fatal("sampled replay cannot ride an observer: each unit "
                   "runs its own short-lived cache, so there is no "
                   "aggregate per-set state to observe");
    const std::uint64_t records = sampledPopulation();
    const std::uint64_t n_units = plan.unitsFor(records);
    const std::size_t batch_len = std::max<std::size_t>(
        batchLen_ ? batchLen_ : defaultBatchLen(), 1);
    std::vector<AccessOutcome> outs(batch_len);

    SampledStats sampled;
    sampled.plan = plan;
    sampled.records = records;
    CacheStats total;

    if (stream_) {
        if (first_unit != 0 || unit_count != 0)
            bsim_fatal("sampled unit ranges need a seekable trace "
                       "source; streams run the full unit list");
        AccessStream &stream = *stream_;
        sampled.units.reserve(static_cast<std::size_t>(n_units));
        std::vector<MemAccess> reqs(batch_len);

        // One forward pass: streams cannot seek, so records between
        // units are pulled and discarded (generation cost only);
        // warmup and measured records are fed through the batched hot
        // path.
        std::uint64_t pos = 0;
        auto pump = [&](std::uint64_t n, BaseCache *cache) {
            while (n > 0) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(n, batch_len));
                std::size_t got = want;
                if (stream.hasSpanBatches()) {
                    std::span<const MemAccess> s = stream.nextSpan(want);
                    s = s.first(std::min(s.size(), want));
                    if (s.empty())
                        bsim_fatal("stream '", label_,
                                   "' exhausted at record ", pos,
                                   " of a declared ", records,
                                   "-record population");
                    if (cache)
                        cache->accessBatch(s, outs.data());
                    got = s.size();
                } else {
                    stream.nextBatch(reqs.data(), want);
                    if (cache)
                        cache->accessBatch({reqs.data(), want},
                                           outs.data());
                }
                pos += got;
                n -= got;
            }
        };

        for (std::uint64_t k = 0; k < n_units; ++k) {
            const std::uint64_t s0 = k * plan.period;
            const std::uint64_t e =
                std::min(s0 + plan.unitLen, records);
            // Clamp the warmup window so it never reaches back into
            // records already consumed (the previous unit, or the
            // stream start).
            const std::uint64_t w0 =
                std::max(s0 >= plan.warmup ? s0 - plan.warmup : 0, pos);
            pump(w0 - pos, nullptr);
            auto cache = config_.build(config_.label, 1, nullptr);
            pump(s0 - pos, cache.get());
            const CacheStats after_warmup = cache->stats();
            pump(e - pos, cache.get());
            CacheStats delta = cache->stats();
            delta -= after_warmup;
            total += delta;
            sampled.units.push_back({k, delta.accesses, delta.misses});
        }
    } else {
        const std::uint64_t u0 = std::min(first_unit, n_units);
        const std::uint64_t u1 =
            unit_count == 0 ? n_units
                            : std::min(u0 + unit_count, n_units);
        sampled.units.reserve(static_cast<std::size_t>(u1 - u0));
        TraceReaderPtr reader = handle_ ? openTraceReader(handle_)
                                        : openTraceReader(tracePath_);

        auto pump = [&](BaseCache &cache, std::uint64_t n) {
            while (n > 0) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(n, batch_len));
                // Same defensive clamp as the full replay loop.
                std::span<const MemAccess> s = reader->nextSpan(want);
                s = s.first(std::min(s.size(), want));
                if (s.empty())
                    bsim_fatal("trace '", tracePath_,
                               "' ended at record ", reader->position(),
                               " inside a sampling unit");
                cache.accessBatch(s, outs.data());
                n -= s.size();
            }
        };

        for (std::uint64_t k = u0; k < u1; ++k) {
            // Unit k measures [k*P, min(k*P + U, records)), warmed up
            // from a cold cache over the W records before it.
            // Simulating every unit independently is what makes a
            // unit's sums a pure function of (trace, config, plan, k)
            // — the bit-identity contract sharding relies on.
            const std::uint64_t start = k * plan.period;
            const std::uint64_t end =
                std::min(start + plan.unitLen, records);
            const std::uint64_t warm_start =
                start >= plan.warmup ? start - plan.warmup : 0;
            reader->skipTo(warm_start);
            auto cache = config_.build(config_.label, 1, nullptr);
            pump(*cache, start - warm_start);
            const CacheStats after_warmup = cache->stats();
            pump(*cache, end - start);
            CacheStats delta = cache->stats();
            delta -= after_warmup;
            total += delta;
            sampled.units.push_back({k, delta.accesses, delta.misses});
        }
    }

    MissRateResult r;
    r.workload = label_;
    r.config = config_.label;
    r.stats = total;
    r.sampled = std::move(sampled);
    return r;
}

void
writeTextOutput(const std::string &path, const std::string &text)
{
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        bsim_fatal("cannot write '", path, "'");
    std::fputs(text.c_str(), f);
    std::fclose(f);
}

void
writeObserverExports(const StatsExport &ex, const ObserverReport &rep)
{
    if (!ex.heatmapPath.empty())
        writeTextOutput(ex.heatmapPath, heatmapCsv(rep));
    // The interval series rides inside --stats-json when one is being
    // written; --interval alone dumps it as CSV on stdout.
    if (ex.interval > 0 && ex.statsJsonPath.empty())
        std::fputs(intervalCsv(rep).c_str(), stdout);
}

CacheHierarchy
makeHierarchy(const HierarchySpec &spec)
{
    CacheHierarchy hier(spec.params);
    hier.setL1I(spec.l1.build("L1I", spec.params.l1HitLatency, nullptr));
    hier.setL1D(spec.l1.build("L1D", spec.params.l1HitLatency, nullptr));
    return hier;
}

} // namespace bsim
