#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/logging.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "sim/config.hh"
#include "sim/trace_replay.hh"

namespace bsim {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Simulated events (accesses or uops) one outcome contributed. */
std::uint64_t
eventsOf(const SweepOutcome &out)
{
    if (out.miss)
        return out.miss->stats.accesses;
    if (out.timed)
        return out.timed->cpu.uops;
    if (out.customEvents)
        return *out.customEvents;
    return 0;
}

/** Run one job; every failure is captured in the outcome. */
SweepOutcome
runOne(const SweepJob &job, std::size_t index, std::uint64_t base_seed)
{
    SweepOutcome out;
    out.index = index;
    out.seed = job.seed ? *job.seed : sweepSeed(base_seed, index);
    const auto start = Clock::now();
    try {
        // Custom jobs carry their own workload in the callable and
        // trace jobs theirs in the file; the spec2k name and length
        // checks only apply to the built-in synthetic runners.
        if (job.kind == SweepJob::Kind::MissRate ||
            job.kind == SweepJob::Kind::Timed) {
            if (!isSpec2kName(job.workload))
                throw std::invalid_argument("unknown workload '" +
                                            job.workload + "'");
            if (job.length == 0)
                throw std::invalid_argument("zero-length job for '" +
                                            job.workload + "'");
        }
        switch (job.kind) {
          case SweepJob::Kind::MissRate:
            if (job.sample)
                out.miss = runMissRateSampled(job.workload, job.side,
                                              job.config, job.length,
                                              *job.sample, out.seed);
            else
                out.miss = runMissRate(job.workload, job.side,
                                       job.config, job.length, out.seed);
            break;
          case SweepJob::Kind::Timed:
            out.timed = runTimed(job.workload, job.config, job.length,
                                 out.seed, job.hierarchy);
            break;
          case SweepJob::Kind::Custom:
            if (!job.custom)
                throw std::invalid_argument("custom job '" +
                                            job.workload +
                                            "' has no callable");
            out.customEvents = job.custom(out.seed);
            break;
          case SweepJob::Kind::Trace: {
            TraceReplayOptions opts;
            opts.maxAccesses = job.length;
            opts.batchLen = job.traceBatchLen;
            opts.observe = job.observe;
            opts.handle = job.traceHandle;
            if (job.sample)
                out.miss = runTraceSampled(job.tracePath, job.config,
                                           *job.sample, opts,
                                           job.sampleFirstUnit,
                                           job.sampleUnitCount);
            else
                out.miss = runTraceReplay(job.tracePath, job.config,
                                          job.shard, opts);
            break;
          }
        }
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    out.seconds = secondsSince(start);
    return out;
}

} // namespace

SweepJob
SweepJob::missRate(std::string workload, StreamSide side,
                   CacheConfig config, std::uint64_t accesses,
                   std::optional<std::uint64_t> seed)
{
    SweepJob j;
    j.kind = Kind::MissRate;
    j.workload = std::move(workload);
    j.side = side;
    j.config = std::move(config);
    j.length = accesses;
    j.seed = seed;
    return j;
}

SweepJob
SweepJob::timed(std::string workload, CacheConfig config,
                std::uint64_t uops, std::optional<std::uint64_t> seed,
                HierarchyParams hierarchy)
{
    SweepJob j;
    j.kind = Kind::Timed;
    j.workload = std::move(workload);
    j.config = std::move(config);
    j.length = uops;
    j.seed = seed;
    j.hierarchy = hierarchy;
    return j;
}

SweepJob
SweepJob::customJob(std::string label,
                    std::function<std::uint64_t(std::uint64_t)> fn,
                    std::optional<std::uint64_t> seed)
{
    SweepJob j;
    j.kind = Kind::Custom;
    j.workload = std::move(label);
    j.custom = std::move(fn);
    j.seed = seed;
    return j;
}

SweepJob
SweepJob::traceReplay(std::string path, TraceShard shard,
                      CacheConfig config, std::uint64_t max_accesses,
                      std::size_t batch_len, ObserverConfig observe)
{
    SweepJob j;
    j.kind = Kind::Trace;
    j.workload = "trace:" + path;
    j.config = std::move(config);
    j.length = max_accesses;
    j.tracePath = std::move(path);
    j.shard = shard;
    j.traceBatchLen = batch_len;
    j.observe = observe;
    return j;
}

SweepJob
SweepJob::traceSampled(std::string path, CacheConfig config,
                       SamplePlan plan, std::uint64_t first_unit,
                       std::uint64_t unit_count,
                       std::uint64_t max_accesses, std::size_t batch_len)
{
    SweepJob j;
    j.kind = Kind::Trace;
    j.workload = "trace:" + path + "#sample" + plan.toString();
    j.config = std::move(config);
    j.length = max_accesses;
    j.tracePath = std::move(path);
    j.traceBatchLen = batch_len;
    j.sample = plan;
    j.sampleFirstUnit = first_unit;
    j.sampleUnitCount = unit_count;
    return j;
}

std::uint64_t
sweepSeed(std::uint64_t base_seed, std::size_t job_index)
{
    // One splitmix64 step at position (job_index + 1) of the stream
    // seeded by base_seed; +1 keeps job 0 from echoing the bare base
    // seed's first output used elsewhere.
    std::uint64_t x = base_seed +
                      (static_cast<std::uint64_t>(job_index) + 1) *
                          0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double
SweepSummary::eventsPerSecond() const
{
    return wallSeconds > 0.0 ? double(events) / wallSeconds : 0.0;
}

SweepRun
runSweep(const std::vector<SweepJob> &jobs, const SweepOptions &options)
{
    SweepRun run;
    run.outcomes.resize(jobs.size());

    const unsigned requested =
        options.jobs ? options.jobs : defaultJobs();
    const unsigned threads = static_cast<unsigned>(
        std::min<std::size_t>(std::max(requested, 1u), jobs.size()));

    const auto start = Clock::now();
    std::atomic<std::size_t> next{0};
    std::mutex progress_mutex;
    std::size_t done = 0;
    std::uint64_t events = 0;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            run.outcomes[i] = runOne(jobs[i], i, options.baseSeed);

            std::lock_guard<std::mutex> lock(progress_mutex);
            ++done;
            events += eventsOf(run.outcomes[i]);
            if (options.onProgress) {
                SweepProgress p;
                p.done = done;
                p.total = jobs.size();
                p.events = events;
                p.seconds = secondsSince(start);
                options.onProgress(p);
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    run.summary.jobs = jobs.size();
    run.summary.threads = std::max(threads, 1u);
    run.summary.events = events;
    run.summary.wallSeconds = secondsSince(start);
    for (const auto &out : run.outcomes)
        if (!out.ok())
            ++run.summary.failed;
    return run;
}

const MissRateResult &
missResult(const SweepOutcome &outcome)
{
    if (!outcome.ok())
        bsim_fatal("sweep job ", outcome.index, " failed: ",
                   outcome.error);
    if (!outcome.miss)
        bsim_fatal("sweep job ", outcome.index,
                   " is not a miss-rate job");
    return *outcome.miss;
}

const TimedResult &
timedResult(const SweepOutcome &outcome)
{
    if (!outcome.ok())
        bsim_fatal("sweep job ", outcome.index, " failed: ",
                   outcome.error);
    if (!outcome.timed)
        bsim_fatal("sweep job ", outcome.index, " is not a timed job");
    return *outcome.timed;
}

void
printSweepSummary(const SweepSummary &summary)
{
    printSweepSummary(summary, stdout);
}

void
printSweepSummary(const SweepSummary &summary, std::FILE *out)
{
    Table t({"jobs", "failed", "threads", "wall-s", "sim-events",
             "Mevents/s"});
    t.row()
        .cell(std::uint64_t(summary.jobs))
        .cell(std::uint64_t(summary.failed))
        .cell(summary.threads)
        .cell(summary.wallSeconds, 2)
        .cell(summary.events)
        .cell(summary.eventsPerSecond() / 1e6, 2);
    t.print("sweep engine", out);
}

} // namespace bsim
