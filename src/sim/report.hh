/**
 * @file
 * Structured (JSON) reporting of experiment results, for machine
 * consumption of the same data the ASCII tables show.
 */

#ifndef BSIM_SIM_REPORT_HH
#define BSIM_SIM_REPORT_HH

#include <string>

#include "common/json.hh"
#include "sim/runner.hh"
#include "sim/trace_replay.hh"

namespace bsim {

/** Append a CacheStats object under the writer's current key. */
void writeJson(JsonWriter &j, const CacheStats &s);

/** Append a PdStats object. */
void writeJson(JsonWriter &j, const PdStats &s);

/** Append a BalanceReport. */
void writeJson(JsonWriter &j, const BalanceReport &b);

/**
 * Append a SampledStats evidence block: the plan (unitLen/period/
 * warmup), population, unit count, sampled fraction, and the estimate
 * with stderr and 95% CI. Replaces "balance" in sampled run bodies
 * (per-unit caches have no aggregate set usage to classify).
 */
void writeJson(JsonWriter &j, const SampledStats &s);

/** Serialize one standalone miss-rate run. */
std::string toJson(const MissRateResult &r);

/** Serialize one timed (OOO core) run. */
std::string toJson(const TimedResult &r);

/**
 * Serialize one run as a "bsim-stats-v1" document — the shape behind
 * `bsim --stats-json`, linted by bench/stats_json_lint.cc and
 * scripts/check_stats_json.sh (change them together). @p driver is
 * "workload" or "trace" depending on what produced @p r.
 */
std::string toStatsJson(const MissRateResult &r,
                        const std::string &driver);

/**
 * The "bsim-stats-v1" document for a sharded replay: driver "sharded",
 * merged totals at top level (balance recomputed from the merged
 * observer histogram when the replay was observed) plus a "shards"
 * array of per-shard run objects in shard order.
 */
std::string toStatsJson(const TraceSweepResult &r,
                        const std::string &workload,
                        const std::string &config);

} // namespace bsim

#endif // BSIM_SIM_REPORT_HH
