/**
 * @file
 * Structured (JSON) reporting of experiment results, for machine
 * consumption of the same data the ASCII tables show.
 */

#ifndef BSIM_SIM_REPORT_HH
#define BSIM_SIM_REPORT_HH

#include <string>

#include "common/json.hh"
#include "sim/runner.hh"

namespace bsim {

/** Append a CacheStats object under the writer's current key. */
void writeJson(JsonWriter &j, const CacheStats &s);

/** Append a PdStats object. */
void writeJson(JsonWriter &j, const PdStats &s);

/** Append a BalanceReport. */
void writeJson(JsonWriter &j, const BalanceReport &b);

/** Serialize one standalone miss-rate run. */
std::string toJson(const MissRateResult &r);

/** Serialize one timed (OOO core) run. */
std::string toJson(const TimedResult &r);

} // namespace bsim

#endif // BSIM_SIM_REPORT_HH
