#include "sim/bsim_driver.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "observe/export.hh"
#include "power/cacti_lite.hh"
#include "sim/experiment_file.hh"
#include "sim/report.hh"
#include "sim/trace_replay.hh"
#include "timing/storage_model.hh"
#include "workload/spec2k.hh"
#include "workload/trace_format.hh"
#include "workload/trace_reader.hh"

namespace bsim {

namespace {

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n", msg);
    std::fprintf(stderr,
                 "usage: bsim [--cache SPEC] [--list-caches]\n"
                 "  --cache SPEC     declarative cache spec, e.g. "
                 "bcache:16kB,mf=8,bas=8,\n"
                 "                   sa:16kB,8w, dm:16kB+victim:16 "
                 "(--list-caches for the\n"
                 "                   registered grammar; overrides the "
                 "--kind family)\n"
                 "  [--kind dm|setassoc|victim|bcache|"
                 "column|skewed|hac|xor]\n"
                 "  [--size B] [--line B] [--ways N] [--mf N] [--bas N]"
                 "\n"
                 "  [--repl lru|random|fifo|plru|nmru] "
                 "[--write-policy wb|wt]\n"
                 "  [--workload NAME] [--side data|inst] [--seed N]\n"
                 "  [--trace FILE]   replay a trace (.bst, .din/text, "
                 "or either .gz);\n"
                 "                   streamed chunk by chunk, O(chunk) "
                 "memory\n"
                 "  [--shards N]     split the trace into N windows and "
                 "replay them\n"
                 "                   in parallel on the sweep engine "
                 "(cold cache per\n"
                 "                   shard; see docs/TRACES.md)\n"
                 "  [--jobs N]       sweep worker threads for --shards "
                 "(BSIM_JOBS)\n"
                 "  [--batch N]      accessBatch span length (BSIM_BATCH;"
                 " 0/1 =\n"
                 "                   per-access path)\n"
                 "  [--accesses N]   synthetic run length, or a cap on "
                 "trace replay\n"
                 "                   (traces default to the whole file)\n"
                 "  [--sample U:P:W] sampled run: measure U accesses "
                 "every P, after\n"
                 "                   W of functional warmup; reports a "
                 "miss-ratio\n"
                 "                   estimate with stderr and 95%% CI "
                 "(EXPERIMENTS.md\n"
                 "                   cookbook; not with --timed/"
                 "--heatmap/--interval)\n"
                 "  [--trace-info FILE]  print a trace's header/format "
                 "and exit\n"
                 "  [--timed]        OOO-core/Table-4 processor model "
                 "(workload-\n"
                 "                   driven only)\n"
                 "  [--stats-json F] write a bsim-stats-v1 document "
                 "(per-set\n"
                 "                   histograms, balance metrics, decoder"
                 " telemetry)\n"
                 "                   to F ('-' = stdout, suppresses the "
                 "report);\n"
                 "                   enables the observer\n"
                 "  [--heatmap F]    write the per-set access/miss/"
                 "eviction\n"
                 "                   histogram as CSV to F ('-' = stdout)"
                 "\n"
                 "  [--interval N]   windowed time-series every N "
                 "accesses;\n"
                 "                   embedded in --stats-json, or CSV to "
                 "stdout\n"
                 "  [--json] [--config FILE]\n"
                 "  --serve ...      run as bsimd, the bsim-rpc-v1 "
                 "simulation server\n"
                 "                   (bsim --serve --help; docs/SERVE.md)"
                 "\n"
                 "  --connect TARGET send one request to a running bsimd "
                 "and print\n"
                 "                   the response body (bsim --connect "
                 "--help)\n"
                 "A --config file (see sim/experiment_file.hh) sets the\n"
                 "defaults; explicit flags given AFTER it override.\n");
    std::exit(2);
}

std::uint64_t
parseU64(const char *s)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(s, &end, 0);
    if (end == s || *end)
        usage("bad number");
    return v;
}

/** --trace-info: the header/probe readout, no records replayed. */
int
printTraceInfo(const std::string &path)
{
    const TraceInfo info = probeTrace(path);
    std::printf("trace    : %s\n", path.c_str());
    std::printf("format   : %s%s\n", info.format.c_str(),
                info.compressed ? " (gzip)" : "");
    if (info.recordCount == kUnknownRecordCount)
        std::printf("records  : unknown (text traces carry no header; "
                    "convert to .bst)\n");
    else
        std::printf("records  : %llu\n",
                    static_cast<unsigned long long>(info.recordCount));
    if (info.format == "BST2") {
        const Bst2Header h{info.recordCount, info.addrBits,
                           info.chunkLen, 0};
        std::printf("chunking : %u records/chunk, %llu chunks\n",
                    info.chunkLen,
                    static_cast<unsigned long long>(h.chunks()));
        std::printf("addr bits: %u\n", info.addrBits);
        std::printf("zero-copy: %s\n",
                    !info.compressed && kBst2RecordMatchesMemAccess
                        ? "yes (mmap spans feed accessBatch directly)"
                        : info.compressed
                              ? "no (gzip inflates into a chunk buffer)"
                              : "no (host layout differs; records are "
                                "converted per chunk)");
    }
    return 0;
}

/**
 * The human-readable estimate lines shared by all sampled drivers.
 * Every printer below takes @p out because a '-' export owns stdout:
 * the report then moves to stderr instead of being suppressed, so one
 * invocation can pipe clean JSON while a human still watches the run.
 */
void
printSampled(const SampledStats &s, std::FILE *out)
{
    const SampleEstimate e = s.estimate();
    std::fprintf(out,
                 "sample   : U=%llu P=%llu W=%llu over %llu records "
                 "(%llu units, %.4f%% measured)\n",
                 static_cast<unsigned long long>(s.plan.unitLen),
                 static_cast<unsigned long long>(s.plan.period),
                 static_cast<unsigned long long>(s.plan.warmup),
                 static_cast<unsigned long long>(s.records),
                 static_cast<unsigned long long>(e.units),
                 100.0 * e.sampledFraction);
    std::fprintf(out,
                 "estimate : miss ratio %.6f (stderr %.6f, 95%% CI "
                 "[%.6f, %.6f], MPKI %.2f)\n",
                 e.value, e.stderrValue, e.ciLo, e.ciHi,
                 1000.0 * e.value);
}

void
printMissRate(const MissRateResult &r, const CacheConfig &cfg,
              const std::string &driver_desc, std::FILE *out)
{
    std::fprintf(out, "config   : %s (%s, %s, %s)\n", cfg.label.c_str(),
                 sizeString(cfg.sizeBytes).c_str(),
                 replPolicyName(cfg.repl),
                 writePolicyName(cfg.writePolicy));
    std::fprintf(out, "driver   : %s\n", driver_desc.c_str());
    std::fprintf(out, "accesses : %llu\n",
                 static_cast<unsigned long long>(r.stats.accesses));
    std::fprintf(out, "miss rate: %.4f%%  (hits %llu, misses %llu)\n",
                 100.0 * r.missRate(),
                 static_cast<unsigned long long>(r.stats.hits),
                 static_cast<unsigned long long>(r.stats.misses));
    std::fprintf(out,
                 "traffic  : refills %llu, writebacks %llu, "
                 "writethroughs %llu\n",
                 static_cast<unsigned long long>(r.stats.refills),
                 static_cast<unsigned long long>(r.stats.writebacks),
                 static_cast<unsigned long long>(r.stats.writethroughs));
    if (r.pd)
        std::fprintf(out,
                     "PD       : hit-on-miss %.2f%%, predicted misses "
                     "%.2f%%\n",
                     100.0 * r.pd->pdHitRateOnMiss(),
                     100.0 * r.pd->missPredictionRate());
    if (r.victimHits)
        std::fprintf(out, "victim   : %llu buffer hits\n",
                     static_cast<unsigned long long>(r.victimHits));
    if (r.sampled) {
        printSampled(*r.sampled, out);
        return; // no balance: per-unit caches have no aggregate usage
    }
    std::fprintf(out, "balance  : %s\n", r.balance.toString().c_str());
}

void
printBCacheCosts(const CacheConfig &cfg, std::FILE *out)
{
    if (cfg.kind != CacheKind::BCache)
        return;
    const BCacheParams p = cfg.bcacheParams();
    std::fprintf(out, "layout   : %s\n",
                 deriveLayout(p).toString().c_str());
    std::fprintf(out, "area     : %+.2f%% vs same-sized direct-mapped\n",
                 areaOverheadPct(
                     conventionalStorage(p.sizeBytes, p.lineBytes, 1),
                     bcacheStorage(p)));
    std::fprintf(out, "energy   : %.1f pJ/access (DM baseline %.1f)\n",
                 CactiLite::bcache(p).total(), [&] {
                     CacheOrg o;
                     o.sizeBytes = p.sizeBytes;
                     o.lineBytes = p.lineBytes;
                     o.ways = 1;
                     return CactiLite::conventional(o).total();
                 }());
}

// StatsExport, writeTextOutput and writeObserverExports moved to
// sim/session.hh — the sink layer is shared with every harness now.

/** --shards: parallel replay, per-shard table + merged totals. */
int
runSharded(const std::string &trace_path, const CacheConfig &cfg,
           unsigned shards, unsigned jobs, std::size_t batch,
           std::uint64_t max_accesses,
           const std::optional<SamplePlan> &sample, bool json,
           const StatsExport &ex, const BsimHooks &hooks)
{
    SweepOptions opts;
    opts.jobs = jobs;
    TraceReplayOptions replay;
    replay.batchLen = batch;
    // Sampled jobs run per-unit caches and cannot be observed; the
    // flag combinations that would need an observer are rejected in
    // bsimMain before we get here. maxAccesses caps the sampled
    // *population*; full sharded replay keeps its per-window semantics.
    if (sample)
        replay.maxAccesses = max_accesses;
    else
        replay.observe = ex.observerConfig();
    const TraceSweepResult res =
        sample ? runTraceSampledSharded(trace_path, cfg, *sample,
                                        shards, opts, replay)
               : runTraceSharded(trace_path, cfg, shards, opts, replay);

    if (json) {
        // A JSON array of per-shard MissRateResult records; merged
        // totals are the field-wise sums (trace-sampling semantics).
        // json + a '-' export is rejected up front, so stdout is ours.
        std::printf("[");
        for (std::size_t i = 0; i < res.shards.size(); ++i)
            std::printf("%s%s", i ? ",\n " : "",
                        toJson(res.shards[i]).c_str());
        std::printf("]\n");
    } else {
        // A "-" export owns stdout; the report moves to stderr so the
        // piped JSON stays clean while a human still watches the run.
        std::FILE *out = ex.claimsStdout() ? stderr : stdout;
        Table t({"shard", "window", "accesses", "misses", "miss%"});
        for (std::size_t i = 0; i < res.shards.size(); ++i) {
            const MissRateResult &s = res.shards[i];
            const std::size_t win = s.workload.find('[');
            std::string window = win == std::string::npos
                                     ? std::string("[whole file)")
                                     : s.workload.substr(win);
            // Sampled jobs own unit ranges, not record windows.
            if (s.sampled && !s.sampled->units.empty())
                window = "units[" +
                         std::to_string(s.sampled->units.front().unit) +
                         "+" + std::to_string(s.sampled->units.size()) +
                         ")";
            t.row()
                .cell(std::uint64_t(i))
                .cell(window)
                .cell(s.stats.accesses)
                .cell(s.stats.misses)
                .cell(100.0 * s.missRate(), 4);
        }
        t.print((sample ? "sharded sampled replay of "
                        : "sharded replay of ") +
                    trace_path + " on " + cfg.label,
                out);
        std::fprintf(out, "merged   : %s\n",
                     res.total.toString().c_str());
        if (res.sampled)
            printSampled(*res.sampled, out);
        if (res.victimHits)
            std::fprintf(out, "victim   : %llu buffer hits\n",
                         static_cast<unsigned long long>(
                             res.victimHits));
        if (res.pd)
            std::fprintf(out,
                         "PD       : %llu hit-on-miss, %llu predicted "
                         "misses\n",
                         static_cast<unsigned long long>(
                             res.pd->pdHitCacheMiss),
                         static_cast<unsigned long long>(res.pd->pdMiss));
        printSweepSummary(res.summary, out);
    }
    if (!ex.statsJsonPath.empty())
        writeTextOutput(ex.statsJsonPath,
                        toStatsJson(res, "trace:" + trace_path,
                                    cfg.label) +
                            "\n");
    if (res.observer)
        writeObserverExports(ex, *res.observer);
    if (hooks.onSweepDone)
        hooks.onSweepDone(cfg.label, res.summary);
    return 0;
}

} // namespace

int
bsimMain(int argc, char **argv, const BsimHooks &hooks)
{
    // The serving layer gets argv before anything else: --serve turns
    // this process into bsimd, --connect into its client. Both are
    // optional hooks so serve-less builds keep linking without
    // src/serve.
    if (argc > 1 && !std::strcmp(argv[1], "--serve")) {
        if (!hooks.serveMain)
            usage("--serve needs a serve-enabled build (bench/bsim)");
        std::vector<char *> args;
        args.push_back(argv[0]);
        for (int i = 2; i < argc; ++i)
            args.push_back(argv[i]);
        return hooks.serveMain(static_cast<int>(args.size()),
                               args.data());
    }
    if (argc > 1 && !std::strcmp(argv[1], "--connect")) {
        if (!hooks.connectMain)
            usage("--connect needs a serve-enabled build (bench/bsim)");
        return hooks.connectMain(argc, argv);
    }

    std::string kind = "bcache";
    std::uint64_t size = 16 * 1024;
    std::uint32_t line = 32;
    std::uint32_t ways = 8;
    std::uint32_t mf = 8, bas = 8;
    std::string repl = "lru";
    std::string wp = "wb";
    std::string workload = "gcc";
    std::string side = "data";
    std::string trace_path;
    std::uint64_t accesses = 1'000'000;
    bool accesses_set = false;
    std::uint64_t seed = kDefaultSeed;
    unsigned shards = 0;
    unsigned jobs = 0;
    std::size_t batch = 0;
    std::optional<SamplePlan> sample;
    bool json = false;
    bool timed = false;
    StatsExport ex;
    bool haveFileConfig = false;
    CacheConfig cfgFromFile;
    std::string cacheSpec;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                usage(flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--config")) {
            const ExperimentSpec spec =
                parseExperimentFile(need("--config"));
            cfgFromFile = spec.cache;
            haveFileConfig = true;
            workload = spec.workload;
            side = spec.side == StreamSide::Inst ? "inst" : "data";
            trace_path = spec.tracePath;
            accesses = spec.accesses;
            accesses_set = true;
            seed = spec.seed;
        } else if (!std::strcmp(argv[i], "--cache")) {
            cacheSpec = need("--cache");
        } else if (!std::strcmp(argv[i], "--list-caches")) {
            std::fputs(listCacheSpecs().c_str(), stdout);
            return 0;
        } else if (!std::strcmp(argv[i], "--kind")) {
            kind = need("--kind");
            haveFileConfig = false; // explicit kind rebuilds the config
            cacheSpec.clear();      // ... and so does an explicit spec
        }
        else if (!std::strcmp(argv[i], "--size"))
            size = parseU64(need("--size"));
        else if (!std::strcmp(argv[i], "--line"))
            line = static_cast<std::uint32_t>(parseU64(need("--line")));
        else if (!std::strcmp(argv[i], "--ways"))
            ways = static_cast<std::uint32_t>(parseU64(need("--ways")));
        else if (!std::strcmp(argv[i], "--mf"))
            mf = static_cast<std::uint32_t>(parseU64(need("--mf")));
        else if (!std::strcmp(argv[i], "--bas"))
            bas = static_cast<std::uint32_t>(parseU64(need("--bas")));
        else if (!std::strcmp(argv[i], "--repl"))
            repl = need("--repl");
        else if (!std::strcmp(argv[i], "--write-policy"))
            wp = need("--write-policy");
        else if (!std::strcmp(argv[i], "--workload"))
            workload = need("--workload");
        else if (!std::strcmp(argv[i], "--side"))
            side = need("--side");
        else if (!std::strcmp(argv[i], "--trace"))
            trace_path = need("--trace");
        else if (!std::strcmp(argv[i], "--trace-info"))
            return printTraceInfo(need("--trace-info"));
        else if (!std::strcmp(argv[i], "--shards"))
            shards =
                static_cast<unsigned>(parseU64(need("--shards")));
        else if (!std::strcmp(argv[i], "--jobs"))
            jobs = static_cast<unsigned>(parseU64(need("--jobs")));
        else if (!std::strcmp(argv[i], "--batch"))
            batch =
                static_cast<std::size_t>(parseU64(need("--batch")));
        else if (!std::strcmp(argv[i], "--accesses")) {
            accesses = parseU64(need("--accesses"));
            accesses_set = true;
        }
        else if (!std::strcmp(argv[i], "--sample"))
            sample = parseSamplePlan(need("--sample"));
        else if (!std::strcmp(argv[i], "--seed"))
            seed = parseU64(need("--seed"));
        else if (!std::strcmp(argv[i], "--stats-json"))
            ex.statsJsonPath = need("--stats-json");
        else if (!std::strcmp(argv[i], "--heatmap"))
            ex.heatmapPath = need("--heatmap");
        else if (!std::strcmp(argv[i], "--interval"))
            ex.interval = parseU64(need("--interval"));
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else if (!std::strcmp(argv[i], "--timed"))
            timed = true;
        else if (!std::strcmp(argv[i], "--help") ||
                 !std::strcmp(argv[i], "-h"))
            usage();
        else
            usage(argv[i]);
    }

    CacheConfig cfg;
    if (!cacheSpec.empty()) {
        // The declarative path: any registered spec, one parser. The
        // spec governs every cache parameter (so --repl/--write-policy
        // style overrides below are skipped); a malformed spec surfaces
        // its actionable message as usage text.
        try {
            cfg = parseCacheSpec(cacheSpec);
        } catch (const CacheSpecError &e) {
            usage(e.what());
        }
    } else if (haveFileConfig)
        cfg = cfgFromFile;
    else if (kind == "dm")
        cfg = CacheConfig::directMapped(size, line);
    else if (kind == "setassoc")
        cfg = CacheConfig::setAssoc(size, ways,
                                    replPolicyFromName(repl), line);
    else if (kind == "victim")
        cfg = CacheConfig::victim(size, 16, line);
    else if (kind == "bcache")
        cfg = CacheConfig::bcache(size, mf, bas,
                                  replPolicyFromName(repl), line);
    else if (kind == "column")
        cfg = CacheConfig::columnAssoc(size, line);
    else if (kind == "skewed")
        cfg = CacheConfig::skewed(size, line);
    else if (kind == "hac")
        cfg = CacheConfig::hac(size, 1024, line);
    else if (kind == "xor")
        cfg = CacheConfig::xorDm(size, line);
    else
        usage("unknown --kind");
    if (!haveFileConfig && cacheSpec.empty())
        cfg.repl = replPolicyFromName(repl);
    if (wp == "wt" && cacheSpec.empty())
        cfg.writePolicy = WritePolicy::WriteThroughNoAllocate;
    else if (wp != "wb" && wp != "wt")
        usage("--write-policy must be wb or wt");

    if (json && ex.claimsStdout())
        usage("--json and a '-' export both claim stdout");

    if (sample) {
        if (timed)
            usage("--sample estimates miss ratios, not --timed runs");
        if (!ex.heatmapPath.empty() || ex.interval > 0)
            usage("--sample runs a fresh cache per unit, so there is "
                  "no aggregate state for --heatmap/--interval "
                  "(--stats-json still works: it carries the estimate)");
    }

    if (timed) {
        if (!trace_path.empty())
            usage("--timed drives workloads, not traces");
        if (ex.wantsObserver())
            usage("--stats-json/--heatmap/--interval observe the "
                  "standalone miss-rate drivers, not --timed");
        if (!isSpec2kName(workload))
            usage("unknown --workload");
        const TimedResult tr = runTimed(workload, cfg, accesses, seed);
        if (json) {
            std::printf("%s\n", toJson(tr).c_str());
            return 0;
        }
        std::printf("config   : %s\n", cfg.label.c_str());
        std::printf("workload : %s (%llu uops)\n", workload.c_str(),
                    static_cast<unsigned long long>(tr.cpu.uops));
        std::printf("IPC      : %.3f  (%llu cycles)\n", tr.ipc(),
                    static_cast<unsigned long long>(tr.cpu.cycles));
        std::printf("L1I      : %s\n", tr.l1i.toString().c_str());
        std::printf("L1D      : %s\n", tr.l1d.toString().c_str());
        std::printf("L2       : %s\n", tr.l2.toString().c_str());
        std::printf("stalls   : I$ %llu cyc, load-miss %llu cyc, "
                    "mispredict %llu cyc (overlapping)\n",
                    static_cast<unsigned long long>(
                        tr.cpu.icacheStallCycles),
                    static_cast<unsigned long long>(
                        tr.cpu.loadMissCycles),
                    static_cast<unsigned long long>(
                        tr.cpu.mispredictCycles));
        return 0;
    }

    if (shards > 0) {
        if (trace_path.empty())
            usage("--shards needs --trace");
        return runSharded(trace_path, cfg, shards, jobs, batch,
                          accesses_set ? accesses : 0, sample, json,
                          ex, hooks);
    }

    MissRateResult r;
    if (!trace_path.empty()) {
        // Streamed replay: O(chunk) resident memory regardless of the
        // file's record count (no whole-trace vector).
        TraceReplayOptions opts;
        opts.maxAccesses = accesses_set ? accesses : 0;
        opts.batchLen = batch;
        if (sample) {
            r = runTraceSampled(trace_path, cfg, *sample, opts);
        } else {
            opts.observe = ex.observerConfig();
            r = runTraceReplay(trace_path, cfg, TraceShard{}, opts);
        }
    } else {
        if (!isSpec2kName(workload))
            usage("unknown --workload");
        const StreamSide s = side == "inst" ? StreamSide::Inst
                                            : StreamSide::Data;
        if (sample)
            r = runMissRateSampled(workload, s, cfg, accesses, *sample,
                                   seed);
        else
            r = runMissRate(workload, s, cfg, accesses, seed,
                            ex.observerConfig());
    }

    if (!ex.statsJsonPath.empty())
        writeTextOutput(ex.statsJsonPath,
                        toStatsJson(r, trace_path.empty() ? "workload"
                                                          : "trace") +
                            "\n");
    if (r.observer)
        writeObserverExports(ex, *r.observer);

    if (json) {
        // json + a '-' export is rejected up front; stdout is ours.
        std::printf("%s\n", toJson(r).c_str());
        return 0;
    }

    // A "-" export owns stdout; the human report moves to stderr.
    std::FILE *out = ex.claimsStdout() ? stderr : stdout;
    printMissRate(r, cfg,
                  trace_path.empty() ? workload + " (" + side + ")"
                                     : trace_path,
                  out);
    printBCacheCosts(cfg, out);
    return 0;
}

} // namespace bsim
