#include "power/energy_model.hh"

#include "common/logging.hh"
#include "common/strings.hh"

namespace bsim {

std::string
EnergyTotals::toString() const
{
    return strprintf("dyn=%.3g pJ static=%.3g pJ total=%.3g pJ", dynamic,
                     staticE, total());
}

PicoJoules
SystemEnergyModel::dynamicEnergy(const ActivityCounts &a) const
{
    PicoJoules e = 0;
    // L1 accesses (every access reads the arrays)...
    e += double(a.l1iAccesses) * rates_.l1iAccess;
    e += double(a.l1dAccesses) * rates_.l1dAccess;
    // ...except PD-predicted misses, which skip the tag/data read.
    e -= double(a.pdPredictedMisses) * rates_.pdMissRefund;
    // Victim-buffer probes on main-array misses.
    e += double(a.victimProbes) * rates_.victimProbe;
    // L1 misses refill a block into the L1 arrays.
    e += double(a.l1iMisses + a.l1dMisses) * rates_.l1Refill;
    // Next levels.
    e += double(a.l2Accesses) * rates_.l2Access;
    e += double(a.l2Misses) * rates_.l2Refill;
    e += double(a.offchipAccesses) * rates_.offchipAccess;
    return e;
}

EnergyTotals
SystemEnergyModel::evaluate(const ActivityCounts &a) const
{
    EnergyTotals t;
    t.dynamic = dynamicEnergy(a);
    t.staticE = double(a.cycles) * rates_.staticPerCycle;
    return t;
}

PicoJoules
SystemEnergyModel::calibrateStaticPerCycle(PicoJoules baseline_dynamic,
                                           Cycles baseline_cycles,
                                           double k_static)
{
    bsim_assert(baseline_cycles > 0);
    bsim_assert(k_static >= 0.0 && k_static < 1.0);
    // static = k * (dynamic + static)  =>  static = dynamic * k / (1 - k)
    const PicoJoules total_static =
        baseline_dynamic * k_static / (1.0 - k_static);
    return total_static / double(baseline_cycles);
}

} // namespace bsim
