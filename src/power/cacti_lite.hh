/**
 * @file
 * "Cacti-lite": an analytical per-access energy model for SRAM caches and
 * the B-Cache's CAM-based programmable decoders, standing in for the
 * Cacti 3.2 + HSPICE (0.18 µm) flow the paper uses (Section 5.4).
 *
 * The model is structural: the energy terms scale with the bits read, the
 * rows driven and the ways activated, so the *ratios* the paper's
 * evaluation relies on (direct-mapped far below set-associative; B-Cache =
 * direct-mapped + ~10% for the CAM search) are preserved. Constants are
 * calibrated to the paper's anchors: a 6x8 CAM search = 0.78 pJ and a
 * 6x16 CAM search = 1.62 pJ.
 */

#ifndef BSIM_POWER_CACTI_LITE_HH
#define BSIM_POWER_CACTI_LITE_HH

#include <string>

#include "bcache/bcache_params.hh"
#include "common/types.hh"

namespace bsim {

/** Table 3 style component breakdown (picojoules per access). */
struct CacheEnergyBreakdown
{
    PicoJoules tagSense = 0;
    PicoJoules tagDecode = 0;
    PicoJoules tagBitWordline = 0;
    PicoJoules dataSense = 0;
    PicoJoules dataDecode = 0;
    PicoJoules dataBitWordline = 0;
    PicoJoules dataOther = 0;  ///< output drivers / way mux
    PicoJoules camSearch = 0;  ///< B-Cache / HAC programmable decoders

    PicoJoules total() const
    {
        return tagSense + tagDecode + tagBitWordline + dataSense +
               dataDecode + dataBitWordline + dataOther + camSearch;
    }

    std::string toString() const;
};

/** Organisation whose access energy is being asked for. */
struct CacheOrg
{
    std::uint64_t sizeBytes = 16 * 1024;
    std::uint32_t lineBytes = 32;
    std::uint32_t ways = 1;
    unsigned addrBits = 32;
    std::uint32_t dataSubarrays = 4;
    std::uint32_t tagSubarrays = 8;
};

class CactiLite
{
  public:
    /** Per-access read energy of a conventional set-associative cache. */
    static CacheEnergyBreakdown conventional(const CacheOrg &org);

    /**
     * Per-access energy of the B-Cache: the direct-mapped baseline minus
     * the shortened-tag savings, plus every subarray's PD CAM search.
     */
    static CacheEnergyBreakdown bcache(const BCacheParams &params,
                                       unsigned addr_bits = 32,
                                       std::uint32_t data_subarrays = 4,
                                       std::uint32_t tag_subarrays = 8);

    /** Energy of one search of a @p bits wide, @p entries deep CAM. */
    static PicoJoules camSearchEnergy(unsigned bits,
                                      std::uint64_t entries);

    /**
     * Energy of a victim-buffer probe: a fully associative CAM search of
     * the block address over @p entries, plus reading one line on a hit.
     */
    static PicoJoules victimBufferProbeEnergy(std::uint64_t entries,
                                              std::uint32_t line_bytes,
                                              unsigned addr_bits = 32);
};

} // namespace bsim

#endif // BSIM_POWER_CACTI_LITE_HH
