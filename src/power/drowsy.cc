#include "power/drowsy.hh"

#include "common/strings.hh"

namespace bsim {

std::string
DrowsyReport::toString() const
{
    return strprintf("drowsy=%.1f%% of line-ticks, leakage=%.3fx, "
                     "wakeups=%llu (%.4f cycles/access)",
                     100.0 * drowsyFraction, leakageFactor,
                     static_cast<unsigned long long>(wakeups),
                     avgWakePenaltyPerAccess);
}

DrowsyEstimator::DrowsyEstimator(std::size_t num_lines,
                                 const DrowsyParams &params)
    : params_(params), lastAccess_(num_lines, 0)
{
}

void
DrowsyEstimator::onLineAccess(std::size_t physical_line, bool)
{
    ++now_;
    std::uint64_t &last = lastAccess_[physical_line];
    if (last != 0) {
        const std::uint64_t gap = now_ - last;
        if (gap > params_.windowTicks) {
            drowsyTicks_ += gap - params_.windowTicks;
            ++wakeups_;
        }
    } else {
        // Never-touched lines have been drowsy since the start.
        if (now_ > params_.windowTicks) {
            drowsyTicks_ += now_ - params_.windowTicks;
            ++wakeups_;
        }
    }
    last = now_;
}

DrowsyReport
DrowsyEstimator::report() const
{
    DrowsyReport r;
    r.ticks = now_;
    r.lines = lastAccess_.size();
    if (now_ == 0 || lastAccess_.empty())
        return r;

    // Tail: lines idle (or never touched) through the end of the run.
    std::uint64_t drowsy = drowsyTicks_;
    for (const std::uint64_t last : lastAccess_) {
        const std::uint64_t gap = now_ - (last ? last : 0);
        if (gap > params_.windowTicks)
            drowsy += gap - params_.windowTicks;
    }

    const double line_ticks = double(now_) * double(r.lines);
    r.drowsyFraction = double(drowsy) / line_ticks;
    r.wakeups = wakeups_;
    r.leakageFactor = (1.0 - r.drowsyFraction) +
                      r.drowsyFraction * params_.drowsyLeakFactor;
    r.avgWakePenaltyPerAccess =
        double(wakeups_ * params_.wakePenalty) / double(now_);
    return r;
}

void
DrowsyEstimator::reset()
{
    now_ = 0;
    std::fill(lastAccess_.begin(), lastAccess_.end(), 0);
    drowsyTicks_ = 0;
    wakeups_ = 0;
}

} // namespace bsim
