#include "power/cacti_lite.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/strings.hh"

namespace bsim {

namespace {

// 0.18 µm calibration constants (picojoules). Anchors (Section 5.4):
// a 6x8 CAM search = 0.78 pJ, a 6x16 search = 1.62 pJ, the B-Cache adds
// ~10.5% per access over the 16 kB direct-mapped baseline, and a
// direct-mapped cache sits ~70% below a same-sized 8-way cache.
constexpr double kBitlineBase = 2.30;    // per bit read, fixed part
constexpr double kBitlinePerRow = 0.003; // per bit read, per row driven
constexpr double kSensePerBit = 0.30;    // sense amplifier per bit
constexpr double kDecodeBase = 4.0;      // decoder fixed part
constexpr double kDecodePerRow = 0.02;   // wordline/decoder per row
constexpr double kComparePerBit = 0.12;  // tag comparator per bit
constexpr double kMuxPerBit = 0.05;      // way-select mux per data bit
constexpr double kCamPerBitCell = 0.0165; // CAM search per bit-cell
constexpr double kCamBase = 0.02;        // CAM search fixed part
/**
 * Reading W ways does not cost a full Wx: low-swing bitlines, shared
 * sense amplifiers and segmented precharge make the activated-way cost
 * sublinear (Cacti reports ~3.5x for 8 ways at these sizes).
 */
constexpr double kWayExponent = 0.62;

/** Rows per subarray when an array of @p lines is cut @p subarrays ways. */
double
rowsPerSubarray(std::uint64_t lines, std::uint32_t subarrays)
{
    return double(lines) / double(subarrays ? subarrays : 1);
}

double
bitEnergy(double rows)
{
    return kBitlineBase + kBitlinePerRow * rows;
}

} // namespace

std::string
CacheEnergyBreakdown::toString() const
{
    return strprintf("T-SA=%.1f T-Dec=%.1f T-BL-WL=%.1f D-SA=%.1f "
                     "D-Dec=%.1f D-BL-WL=%.1f D-oth=%.1f CAM=%.1f "
                     "total=%.1f pJ",
                     tagSense, tagDecode, tagBitWordline, dataSense,
                     dataDecode, dataBitWordline, dataOther, camSearch,
                     total());
}

CacheEnergyBreakdown
CactiLite::conventional(const CacheOrg &org)
{
    const CacheGeometry geom(org.sizeBytes, org.lineBytes, org.ways);
    const unsigned tag_bits = org.addrBits - geom.offsetBits() -
                              geom.indexBits();
    const unsigned tag_stored = tag_bits + 2; // + valid + dirty
    const double line_bits = 8.0 * org.lineBytes;

    // All ways of the selected set are read in parallel in a conventional
    // set-associative organisation; a direct-mapped cache reads one. The
    // sublinear way factor models shared array resources (see above).
    const double way_f = std::pow(double(org.ways), kWayExponent);
    const double data_rows =
        rowsPerSubarray(geom.numLines(), org.dataSubarrays);
    const double tag_rows =
        rowsPerSubarray(geom.numLines(), org.tagSubarrays);

    CacheEnergyBreakdown e;
    e.dataBitWordline = way_f * line_bits * bitEnergy(data_rows);
    e.dataSense = way_f * line_bits * kSensePerBit;
    e.dataDecode = org.dataSubarrays *
                   (kDecodeBase + kDecodePerRow * data_rows);
    e.tagBitWordline = way_f * tag_stored * bitEnergy(tag_rows);
    e.tagSense = way_f * tag_stored * kSensePerBit;
    e.tagDecode = org.tagSubarrays *
                  (kDecodeBase + kDecodePerRow * tag_rows);
    // Comparators (per way) and, for ways > 1, the output way mux.
    e.tagSense += way_f * tag_bits * kComparePerBit;
    if (org.ways > 1)
        e.dataOther = line_bits * kMuxPerBit * std::log2(2.0 * org.ways);
    return e;
}

PicoJoules
CactiLite::camSearchEnergy(unsigned bits, std::uint64_t entries)
{
    return kCamBase + kCamPerBitCell * double(bits) * double(entries);
}

CacheEnergyBreakdown
CactiLite::bcache(const BCacheParams &params, unsigned addr_bits,
                  std::uint32_t data_subarrays,
                  std::uint32_t tag_subarrays)
{
    CacheOrg org;
    org.sizeBytes = params.sizeBytes;
    org.lineBytes = params.lineBytes;
    org.ways = 1;
    org.addrBits = addr_bits;
    org.dataSubarrays = data_subarrays;
    org.tagSubarrays = tag_subarrays;
    CacheEnergyBreakdown e = conventional(org);

    const BCacheLayout layout = deriveLayout(params);
    const CacheGeometry geom = bcacheArrayGeometry(params);

    // Tag savings: log2(MF) tag bits move into the PD, shortening every
    // tag read and comparison (Section 5.1).
    const double tag_rows =
        rowsPerSubarray(geom.numLines(), org.tagSubarrays);
    e.tagBitWordline -= layout.mfLog * bitEnergy(tag_rows);
    e.tagSense -= layout.mfLog * (kSensePerBit + kComparePerBit);

    // Every physical line owns a PD entry on both the data and the tag
    // side; all PDs search in parallel with the global decode. The 16 kB
    // design point reproduces the paper's 32x (6x16) + 64x (6x8) CAMs.
    const std::uint64_t lines = geom.numLines();
    const std::uint64_t data_entries_per_cam = 16;
    const std::uint64_t tag_entries_per_cam = 8;
    const std::uint64_t data_cams =
        (lines + data_entries_per_cam - 1) / data_entries_per_cam;
    const std::uint64_t tag_cams =
        (lines + tag_entries_per_cam - 1) / tag_entries_per_cam;
    e.camSearch =
        double(data_cams) *
            camSearchEnergy(layout.piBits, data_entries_per_cam) +
        double(tag_cams) *
            camSearchEnergy(layout.piBits, tag_entries_per_cam);
    return e;
}

PicoJoules
CactiLite::victimBufferProbeEnergy(std::uint64_t entries,
                                   std::uint32_t line_bytes,
                                   unsigned addr_bits)
{
    const unsigned block_bits = addr_bits -
                                floorLog2(std::uint64_t{line_bytes});
    const double line_bits = 8.0 * line_bytes;
    return camSearchEnergy(block_bits, entries) +
           line_bits * (bitEnergy(double(entries)) + kSensePerBit);
}

} // namespace bsim
