/**
 * @file
 * Drowsy-cache leakage estimator (the Section 6.4 remark: the B-Cache's
 * remaining less-accessed sets can still be put into a drowsy state, so
 * leakage techniques like Drowsy Cache / Cache Decay compose with it).
 *
 * Model: time advances one tick per cache access. A line not accessed
 * for a full window is lowered into the drowsy (low-leakage) state; the
 * next access to it pays a wake-up penalty. The estimator reports the
 * fraction of line-ticks spent drowsy and the resulting leakage factor
 *
 *     leakage = awake_fraction + drowsy_fraction * drowsy_leak
 */

#ifndef BSIM_POWER_DROWSY_HH
#define BSIM_POWER_DROWSY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/base_cache.hh"
#include "common/types.hh"

namespace bsim {

/** Drowsy policy parameters. */
struct DrowsyParams
{
    /** Idle ticks (cache accesses) before a line goes drowsy. */
    std::uint64_t windowTicks = 2000;
    /** Leakage of a drowsy line relative to an awake one. */
    double drowsyLeakFactor = 0.10;
    /** Extra cycles to wake a drowsy line on access. */
    Cycles wakePenalty = 1;
};

/** Aggregate results of a drowsy estimation run. */
struct DrowsyReport
{
    std::uint64_t ticks = 0;         ///< total accesses observed
    std::uint64_t lines = 0;
    double drowsyFraction = 0;       ///< drowsy line-ticks / line-ticks
    std::uint64_t wakeups = 0;       ///< accesses that hit drowsy lines
    double leakageFactor = 1.0;      ///< relative leakage energy
    double avgWakePenaltyPerAccess = 0;

    std::string toString() const;
};

/**
 * Attach to a cache via BaseCache::setLineObserver, run a workload, then
 * call report(). Exact per-line idle-gap accounting: a gap of g ticks
 * contributes max(0, g - window) drowsy ticks.
 */
class DrowsyEstimator : public LineAccessObserver
{
  public:
    DrowsyEstimator(std::size_t num_lines, const DrowsyParams &params);

    void onLineAccess(std::size_t physical_line, bool hit) override;

    /** Finalize (accounts the tail gaps) and return the report. */
    DrowsyReport report() const;

    void reset();

    const DrowsyParams &params() const { return params_; }

  private:
    DrowsyParams params_;
    std::uint64_t now_ = 0;
    /** Last access tick + 1 per line; 0 = never accessed. */
    std::vector<std::uint64_t> lastAccess_;
    std::uint64_t drowsyTicks_ = 0;
    std::uint64_t wakeups_ = 0;
};

} // namespace bsim

#endif // BSIM_POWER_DROWSY_HH
