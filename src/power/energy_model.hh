/**
 * @file
 * Total memory-related energy, implementing the paper's Figure 10
 * equations:
 *
 *   E_mem    = E_dyn + E_static
 *   E_dyn    = cache_access * E_cache_access + cache_miss * E_misses
 *   E_misses = E_next_level_mem + E_cache_block_refill
 *   E_static = cycles * E_static_per_cycle
 *
 * with the paper's methodology choices: off-chip access energy is 100x a
 * baseline L1 access, and E_static_per_cycle is calibrated so that static
 * energy is 50% of the baseline's total (k_static = 0.5, Section 6.2).
 */

#ifndef BSIM_POWER_ENERGY_MODEL_HH
#define BSIM_POWER_ENERGY_MODEL_HH

#include <string>

#include "common/types.hh"

namespace bsim {

/** Activity extracted from a simulation run. */
struct ActivityCounts
{
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /** Main-memory reads + writes + writebacks. */
    std::uint64_t offchipAccesses = 0;
    Cycles cycles = 0;

    /** Victim-buffer probes (victim configuration only). */
    std::uint64_t victimProbes = 0;
    /**
     * L1 misses predicted by the B-Cache PD: the tag and data arrays are
     * not read for these accesses, refunding most of the access energy
     * (Section 6.2).
     */
    std::uint64_t pdPredictedMisses = 0;
};

/** Per-event energies of one configuration. */
struct EnergyRates
{
    PicoJoules l1iAccess = 0;
    PicoJoules l1dAccess = 0;
    PicoJoules l2Access = 0;
    PicoJoules offchipAccess = 0;
    /** Writing a refilled block into the L1 array. */
    PicoJoules l1Refill = 0;
    PicoJoules l2Refill = 0;
    PicoJoules victimProbe = 0;
    /** Energy refunded per PD-predicted miss (arrays not read). */
    PicoJoules pdMissRefund = 0;
    PicoJoules staticPerCycle = 0;
};

/** Result of the Figure 10 evaluation. */
struct EnergyTotals
{
    PicoJoules dynamic = 0;
    PicoJoules staticE = 0;
    PicoJoules total() const { return dynamic + staticE; }

    std::string toString() const;
};

class SystemEnergyModel
{
  public:
    explicit SystemEnergyModel(const EnergyRates &rates) : rates_(rates)
    {
    }

    const EnergyRates &rates() const { return rates_; }

    /** Dynamic energy only (Figure 10's E_dyn). */
    PicoJoules dynamicEnergy(const ActivityCounts &a) const;

    /** Full evaluation. */
    EnergyTotals evaluate(const ActivityCounts &a) const;

    /**
     * Calibrate E_static_per_cycle so static energy equals k_static of
     * the *baseline's* total energy (the paper uses k_static = 0.5, i.e.
     * static == dynamic for the baseline). Returns the per-cycle value to
     * store into every configuration's EnergyRates.
     */
    static PicoJoules calibrateStaticPerCycle(PicoJoules baseline_dynamic,
                                              Cycles baseline_cycles,
                                              double k_static = 0.5);

  private:
    EnergyRates rates_;
};

} // namespace bsim

#endif // BSIM_POWER_ENERGY_MODEL_HH
