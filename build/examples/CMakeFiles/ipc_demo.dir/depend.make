# Empty dependencies file for ipc_demo.
# This may be replaced when dependencies are built.
