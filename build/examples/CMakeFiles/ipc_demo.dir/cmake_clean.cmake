file(REMOVE_RECURSE
  "CMakeFiles/ipc_demo.dir/ipc_demo.cpp.o"
  "CMakeFiles/ipc_demo.dir/ipc_demo.cpp.o.d"
  "ipc_demo"
  "ipc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
