# Empty dependencies file for bsim_cli.
# This may be replaced when dependencies are built.
