file(REMOVE_RECURSE
  "CMakeFiles/bsim_cli.dir/bsim_cli.cpp.o"
  "CMakeFiles/bsim_cli.dir/bsim_cli.cpp.o.d"
  "bsim_cli"
  "bsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
