# Empty compiler generated dependencies file for trace_convert.
# This may be replaced when dependencies are built.
