file(REMOVE_RECURSE
  "CMakeFiles/trace_convert.dir/trace_convert.cpp.o"
  "CMakeFiles/trace_convert.dir/trace_convert.cpp.o.d"
  "trace_convert"
  "trace_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
