file(REMOVE_RECURSE
  "CMakeFiles/ablation_context_switch.dir/ablation_context_switch.cc.o"
  "CMakeFiles/ablation_context_switch.dir/ablation_context_switch.cc.o.d"
  "ablation_context_switch"
  "ablation_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
