# Empty compiler generated dependencies file for ablation_context_switch.
# This may be replaced when dependencies are built.
