# Empty dependencies file for ablation_drowsy.
# This may be replaced when dependencies are built.
