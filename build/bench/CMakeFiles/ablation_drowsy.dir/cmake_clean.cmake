file(REMOVE_RECURSE
  "CMakeFiles/ablation_drowsy.dir/ablation_drowsy.cc.o"
  "CMakeFiles/ablation_drowsy.dir/ablation_drowsy.cc.o.d"
  "ablation_drowsy"
  "ablation_drowsy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drowsy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
