# Empty compiler generated dependencies file for table3_energy_access.
# This may be replaced when dependencies are built.
