file(REMOVE_RECURSE
  "CMakeFiles/table3_energy_access.dir/table3_energy_access.cc.o"
  "CMakeFiles/table3_energy_access.dir/table3_energy_access.cc.o.d"
  "table3_energy_access"
  "table3_energy_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_energy_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
