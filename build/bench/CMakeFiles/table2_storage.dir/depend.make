# Empty dependencies file for table2_storage.
# This may be replaced when dependencies are built.
