file(REMOVE_RECURSE
  "CMakeFiles/table2_storage.dir/table2_storage.cc.o"
  "CMakeFiles/table2_storage.dir/table2_storage.cc.o.d"
  "table2_storage"
  "table2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
