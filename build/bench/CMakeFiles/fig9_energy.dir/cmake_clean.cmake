file(REMOVE_RECURSE
  "CMakeFiles/fig9_energy.dir/fig9_energy.cc.o"
  "CMakeFiles/fig9_energy.dir/fig9_energy.cc.o.d"
  "fig9_energy"
  "fig9_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
