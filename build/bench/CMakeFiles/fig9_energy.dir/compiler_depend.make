# Empty compiler generated dependencies file for fig9_energy.
# This may be replaced when dependencies are built.
