file(REMOVE_RECURSE
  "CMakeFiles/amat_clock_impact.dir/amat_clock_impact.cc.o"
  "CMakeFiles/amat_clock_impact.dir/amat_clock_impact.cc.o.d"
  "amat_clock_impact"
  "amat_clock_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amat_clock_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
