# Empty compiler generated dependencies file for amat_clock_impact.
# This may be replaced when dependencies are built.
