# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for amat_clock_impact.
