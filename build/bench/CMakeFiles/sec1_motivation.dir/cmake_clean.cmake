file(REMOVE_RECURSE
  "CMakeFiles/sec1_motivation.dir/sec1_motivation.cc.o"
  "CMakeFiles/sec1_motivation.dir/sec1_motivation.cc.o.d"
  "sec1_motivation"
  "sec1_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec1_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
