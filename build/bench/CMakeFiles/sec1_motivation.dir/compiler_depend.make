# Empty compiler generated dependencies file for sec1_motivation.
# This may be replaced when dependencies are built.
