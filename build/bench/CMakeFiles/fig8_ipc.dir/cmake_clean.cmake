file(REMOVE_RECURSE
  "CMakeFiles/fig8_ipc.dir/fig8_ipc.cc.o"
  "CMakeFiles/fig8_ipc.dir/fig8_ipc.cc.o.d"
  "fig8_ipc"
  "fig8_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
