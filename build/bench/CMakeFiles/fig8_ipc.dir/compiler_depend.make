# Empty compiler generated dependencies file for fig8_ipc.
# This may be replaced when dependencies are built.
