file(REMOVE_RECURSE
  "CMakeFiles/table5_6_mf_bas_pd.dir/table5_6_mf_bas_pd.cc.o"
  "CMakeFiles/table5_6_mf_bas_pd.dir/table5_6_mf_bas_pd.cc.o.d"
  "table5_6_mf_bas_pd"
  "table5_6_mf_bas_pd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_6_mf_bas_pd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
