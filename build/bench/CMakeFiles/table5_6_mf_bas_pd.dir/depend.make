# Empty dependencies file for table5_6_mf_bas_pd.
# This may be replaced when dependencies are built.
