file(REMOVE_RECURSE
  "CMakeFiles/fig5_icache_reduction.dir/fig5_icache_reduction.cc.o"
  "CMakeFiles/fig5_icache_reduction.dir/fig5_icache_reduction.cc.o.d"
  "fig5_icache_reduction"
  "fig5_icache_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_icache_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
