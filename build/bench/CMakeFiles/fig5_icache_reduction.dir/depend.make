# Empty dependencies file for fig5_icache_reduction.
# This may be replaced when dependencies are built.
