# Empty compiler generated dependencies file for related_work_compare.
# This may be replaced when dependencies are built.
