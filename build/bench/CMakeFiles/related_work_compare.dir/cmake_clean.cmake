file(REMOVE_RECURSE
  "CMakeFiles/related_work_compare.dir/related_work_compare.cc.o"
  "CMakeFiles/related_work_compare.dir/related_work_compare.cc.o.d"
  "related_work_compare"
  "related_work_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
