file(REMOVE_RECURSE
  "CMakeFiles/workload_profile.dir/workload_profile.cc.o"
  "CMakeFiles/workload_profile.dir/workload_profile.cc.o.d"
  "workload_profile"
  "workload_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
