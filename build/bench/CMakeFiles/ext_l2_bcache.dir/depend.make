# Empty dependencies file for ext_l2_bcache.
# This may be replaced when dependencies are built.
