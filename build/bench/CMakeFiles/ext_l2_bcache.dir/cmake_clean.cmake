file(REMOVE_RECURSE
  "CMakeFiles/ext_l2_bcache.dir/ext_l2_bcache.cc.o"
  "CMakeFiles/ext_l2_bcache.dir/ext_l2_bcache.cc.o.d"
  "ext_l2_bcache"
  "ext_l2_bcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_l2_bcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
