# Empty dependencies file for table7_balance.
# This may be replaced when dependencies are built.
