file(REMOVE_RECURSE
  "CMakeFiles/table7_balance.dir/table7_balance.cc.o"
  "CMakeFiles/table7_balance.dir/table7_balance.cc.o.d"
  "table7_balance"
  "table7_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
