file(REMOVE_RECURSE
  "CMakeFiles/ablation_seeds.dir/ablation_seeds.cc.o"
  "CMakeFiles/ablation_seeds.dir/ablation_seeds.cc.o.d"
  "ablation_seeds"
  "ablation_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
