# Empty compiler generated dependencies file for ablation_seeds.
# This may be replaced when dependencies are built.
