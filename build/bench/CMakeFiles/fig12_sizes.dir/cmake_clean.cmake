file(REMOVE_RECURSE
  "CMakeFiles/fig12_sizes.dir/fig12_sizes.cc.o"
  "CMakeFiles/fig12_sizes.dir/fig12_sizes.cc.o.d"
  "fig12_sizes"
  "fig12_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
