# Empty dependencies file for fig12_sizes.
# This may be replaced when dependencies are built.
