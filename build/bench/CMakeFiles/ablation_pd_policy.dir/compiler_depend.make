# Empty compiler generated dependencies file for ablation_pd_policy.
# This may be replaced when dependencies are built.
