file(REMOVE_RECURSE
  "CMakeFiles/ablation_pd_policy.dir/ablation_pd_policy.cc.o"
  "CMakeFiles/ablation_pd_policy.dir/ablation_pd_policy.cc.o.d"
  "ablation_pd_policy"
  "ablation_pd_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pd_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
