file(REMOVE_RECURSE
  "CMakeFiles/fig4_dcache_reduction.dir/fig4_dcache_reduction.cc.o"
  "CMakeFiles/fig4_dcache_reduction.dir/fig4_dcache_reduction.cc.o.d"
  "fig4_dcache_reduction"
  "fig4_dcache_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dcache_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
