# Empty compiler generated dependencies file for fig4_dcache_reduction.
# This may be replaced when dependencies are built.
