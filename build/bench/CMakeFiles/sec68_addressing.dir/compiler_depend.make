# Empty compiler generated dependencies file for sec68_addressing.
# This may be replaced when dependencies are built.
