file(REMOVE_RECURSE
  "CMakeFiles/sec68_addressing.dir/sec68_addressing.cc.o"
  "CMakeFiles/sec68_addressing.dir/sec68_addressing.cc.o.d"
  "sec68_addressing"
  "sec68_addressing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec68_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
