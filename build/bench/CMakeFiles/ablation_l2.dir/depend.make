# Empty dependencies file for ablation_l2.
# This may be replaced when dependencies are built.
