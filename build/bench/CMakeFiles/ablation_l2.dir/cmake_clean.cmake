file(REMOVE_RECURSE
  "CMakeFiles/ablation_l2.dir/ablation_l2.cc.o"
  "CMakeFiles/ablation_l2.dir/ablation_l2.cc.o.d"
  "ablation_l2"
  "ablation_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
