file(REMOVE_RECURSE
  "CMakeFiles/bound_opt.dir/bound_opt.cc.o"
  "CMakeFiles/bound_opt.dir/bound_opt.cc.o.d"
  "bound_opt"
  "bound_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
