# Empty compiler generated dependencies file for bound_opt.
# This may be replaced when dependencies are built.
