# Empty compiler generated dependencies file for table1_decoder_timing.
# This may be replaced when dependencies are built.
