file(REMOVE_RECURSE
  "CMakeFiles/table1_decoder_timing.dir/table1_decoder_timing.cc.o"
  "CMakeFiles/table1_decoder_timing.dir/table1_decoder_timing.cc.o.d"
  "table1_decoder_timing"
  "table1_decoder_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_decoder_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
