file(REMOVE_RECURSE
  "CMakeFiles/ablation_victim_entries.dir/ablation_victim_entries.cc.o"
  "CMakeFiles/ablation_victim_entries.dir/ablation_victim_entries.cc.o.d"
  "ablation_victim_entries"
  "ablation_victim_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_victim_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
