file(REMOVE_RECURSE
  "CMakeFiles/fig3_mf_sweep.dir/fig3_mf_sweep.cc.o"
  "CMakeFiles/fig3_mf_sweep.dir/fig3_mf_sweep.cc.o.d"
  "fig3_mf_sweep"
  "fig3_mf_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
