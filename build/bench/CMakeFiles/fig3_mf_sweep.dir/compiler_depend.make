# Empty compiler generated dependencies file for fig3_mf_sweep.
# This may be replaced when dependencies are built.
