# Empty dependencies file for ablation_write_policy.
# This may be replaced when dependencies are built.
