file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_policy.dir/ablation_write_policy.cc.o"
  "CMakeFiles/ablation_write_policy.dir/ablation_write_policy.cc.o.d"
  "ablation_write_policy"
  "ablation_write_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
