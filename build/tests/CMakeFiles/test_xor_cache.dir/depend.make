# Empty dependencies file for test_xor_cache.
# This may be replaced when dependencies are built.
