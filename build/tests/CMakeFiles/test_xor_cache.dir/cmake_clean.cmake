file(REMOVE_RECURSE
  "CMakeFiles/test_xor_cache.dir/test_xor_cache.cc.o"
  "CMakeFiles/test_xor_cache.dir/test_xor_cache.cc.o.d"
  "test_xor_cache"
  "test_xor_cache.pdb"
  "test_xor_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xor_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
