file(REMOVE_RECURSE
  "CMakeFiles/test_strings_table.dir/test_strings_table.cc.o"
  "CMakeFiles/test_strings_table.dir/test_strings_table.cc.o.d"
  "test_strings_table"
  "test_strings_table.pdb"
  "test_strings_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strings_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
