# Empty dependencies file for test_strings_table.
# This may be replaced when dependencies are built.
