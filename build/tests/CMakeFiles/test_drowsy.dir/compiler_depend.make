# Empty compiler generated dependencies file for test_drowsy.
# This may be replaced when dependencies are built.
