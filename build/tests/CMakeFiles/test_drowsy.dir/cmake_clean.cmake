file(REMOVE_RECURSE
  "CMakeFiles/test_drowsy.dir/test_drowsy.cc.o"
  "CMakeFiles/test_drowsy.dir/test_drowsy.cc.o.d"
  "test_drowsy"
  "test_drowsy.pdb"
  "test_drowsy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drowsy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
