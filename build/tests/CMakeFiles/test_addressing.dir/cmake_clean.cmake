file(REMOVE_RECURSE
  "CMakeFiles/test_addressing.dir/test_addressing.cc.o"
  "CMakeFiles/test_addressing.dir/test_addressing.cc.o.d"
  "test_addressing"
  "test_addressing.pdb"
  "test_addressing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addressing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
