# Empty dependencies file for test_addressing.
# This may be replaced when dependencies are built.
