file(REMOVE_RECURSE
  "CMakeFiles/test_way_halting.dir/test_way_halting.cc.o"
  "CMakeFiles/test_way_halting.dir/test_way_halting.cc.o.d"
  "test_way_halting"
  "test_way_halting.pdb"
  "test_way_halting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_way_halting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
