# Empty compiler generated dependencies file for test_way_halting.
# This may be replaced when dependencies are built.
