# Empty dependencies file for test_amat.
# This may be replaced when dependencies are built.
