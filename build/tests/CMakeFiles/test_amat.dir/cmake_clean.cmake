file(REMOVE_RECURSE
  "CMakeFiles/test_amat.dir/test_amat.cc.o"
  "CMakeFiles/test_amat.dir/test_amat.cc.o.d"
  "test_amat"
  "test_amat.pdb"
  "test_amat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_amat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
