file(REMOVE_RECURSE
  "CMakeFiles/test_istream.dir/test_istream.cc.o"
  "CMakeFiles/test_istream.dir/test_istream.cc.o.d"
  "test_istream"
  "test_istream.pdb"
  "test_istream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_istream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
