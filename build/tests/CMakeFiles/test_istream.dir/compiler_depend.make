# Empty compiler generated dependencies file for test_istream.
# This may be replaced when dependencies are built.
