# Empty compiler generated dependencies file for test_alt_caches.
# This may be replaced when dependencies are built.
