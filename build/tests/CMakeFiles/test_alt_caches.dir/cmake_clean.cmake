file(REMOVE_RECURSE
  "CMakeFiles/test_alt_caches.dir/test_alt_caches.cc.o"
  "CMakeFiles/test_alt_caches.dir/test_alt_caches.cc.o.d"
  "test_alt_caches"
  "test_alt_caches.pdb"
  "test_alt_caches[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alt_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
