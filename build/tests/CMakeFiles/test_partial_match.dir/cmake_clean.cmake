file(REMOVE_RECURSE
  "CMakeFiles/test_partial_match.dir/test_partial_match.cc.o"
  "CMakeFiles/test_partial_match.dir/test_partial_match.cc.o.d"
  "test_partial_match"
  "test_partial_match.pdb"
  "test_partial_match[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
