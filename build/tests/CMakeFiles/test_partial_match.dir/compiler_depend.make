# Empty compiler generated dependencies file for test_partial_match.
# This may be replaced when dependencies are built.
