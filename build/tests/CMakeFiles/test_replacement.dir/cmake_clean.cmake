file(REMOVE_RECURSE
  "CMakeFiles/test_replacement.dir/test_replacement.cc.o"
  "CMakeFiles/test_replacement.dir/test_replacement.cc.o.d"
  "test_replacement"
  "test_replacement.pdb"
  "test_replacement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
