# Empty compiler generated dependencies file for test_write_policy.
# This may be replaced when dependencies are built.
