file(REMOVE_RECURSE
  "CMakeFiles/test_write_policy.dir/test_write_policy.cc.o"
  "CMakeFiles/test_write_policy.dir/test_write_policy.cc.o.d"
  "test_write_policy"
  "test_write_policy.pdb"
  "test_write_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
