# Empty dependencies file for test_victim_cache.
# This may be replaced when dependencies are built.
