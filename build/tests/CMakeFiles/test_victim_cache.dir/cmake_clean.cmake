file(REMOVE_RECURSE
  "CMakeFiles/test_victim_cache.dir/test_victim_cache.cc.o"
  "CMakeFiles/test_victim_cache.dir/test_victim_cache.cc.o.d"
  "test_victim_cache"
  "test_victim_cache.pdb"
  "test_victim_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_victim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
