file(REMOVE_RECURSE
  "CMakeFiles/test_bcache.dir/test_bcache.cc.o"
  "CMakeFiles/test_bcache.dir/test_bcache.cc.o.d"
  "test_bcache"
  "test_bcache.pdb"
  "test_bcache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
