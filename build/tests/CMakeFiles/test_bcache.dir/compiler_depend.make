# Empty compiler generated dependencies file for test_bcache.
# This may be replaced when dependencies are built.
