# Empty compiler generated dependencies file for test_bcache_properties.
# This may be replaced when dependencies are built.
