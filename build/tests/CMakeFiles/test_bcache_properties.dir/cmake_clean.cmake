file(REMOVE_RECURSE
  "CMakeFiles/test_bcache_properties.dir/test_bcache_properties.cc.o"
  "CMakeFiles/test_bcache_properties.dir/test_bcache_properties.cc.o.d"
  "test_bcache_properties"
  "test_bcache_properties.pdb"
  "test_bcache_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcache_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
