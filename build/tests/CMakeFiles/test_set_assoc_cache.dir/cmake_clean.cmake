file(REMOVE_RECURSE
  "CMakeFiles/test_set_assoc_cache.dir/test_set_assoc_cache.cc.o"
  "CMakeFiles/test_set_assoc_cache.dir/test_set_assoc_cache.cc.o.d"
  "test_set_assoc_cache"
  "test_set_assoc_cache.pdb"
  "test_set_assoc_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_assoc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
