# Empty compiler generated dependencies file for test_set_assoc_cache.
# This may be replaced when dependencies are built.
