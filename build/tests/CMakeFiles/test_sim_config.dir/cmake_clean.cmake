file(REMOVE_RECURSE
  "CMakeFiles/test_sim_config.dir/test_sim_config.cc.o"
  "CMakeFiles/test_sim_config.dir/test_sim_config.cc.o.d"
  "test_sim_config"
  "test_sim_config.pdb"
  "test_sim_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
