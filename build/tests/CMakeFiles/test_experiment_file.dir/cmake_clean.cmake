file(REMOVE_RECURSE
  "CMakeFiles/test_experiment_file.dir/test_experiment_file.cc.o"
  "CMakeFiles/test_experiment_file.dir/test_experiment_file.cc.o.d"
  "test_experiment_file"
  "test_experiment_file.pdb"
  "test_experiment_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
