# Empty dependencies file for test_experiment_file.
# This may be replaced when dependencies are built.
