file(REMOVE_RECURSE
  "CMakeFiles/test_suite_sanity.dir/test_suite_sanity.cc.o"
  "CMakeFiles/test_suite_sanity.dir/test_suite_sanity.cc.o.d"
  "test_suite_sanity"
  "test_suite_sanity.pdb"
  "test_suite_sanity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_sanity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
