
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_suite_sanity.cc" "tests/CMakeFiles/test_suite_sanity.dir/test_suite_sanity.cc.o" "gcc" "tests/CMakeFiles/test_suite_sanity.dir/test_suite_sanity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/alt/CMakeFiles/bsim_alt.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/bsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/bsim_power.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/bsim_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/bcache/CMakeFiles/bsim_bcache.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
