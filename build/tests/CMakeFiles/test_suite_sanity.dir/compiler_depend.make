# Empty compiler generated dependencies file for test_suite_sanity.
# This may be replaced when dependencies are built.
