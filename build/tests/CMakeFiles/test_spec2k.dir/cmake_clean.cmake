file(REMOVE_RECURSE
  "CMakeFiles/test_spec2k.dir/test_spec2k.cc.o"
  "CMakeFiles/test_spec2k.dir/test_spec2k.cc.o.d"
  "test_spec2k"
  "test_spec2k.pdb"
  "test_spec2k[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec2k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
