# Empty compiler generated dependencies file for test_spec2k.
# This may be replaced when dependencies are built.
