
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bcache/addressing.cc" "src/bcache/CMakeFiles/bsim_bcache.dir/addressing.cc.o" "gcc" "src/bcache/CMakeFiles/bsim_bcache.dir/addressing.cc.o.d"
  "/root/repo/src/bcache/balance.cc" "src/bcache/CMakeFiles/bsim_bcache.dir/balance.cc.o" "gcc" "src/bcache/CMakeFiles/bsim_bcache.dir/balance.cc.o.d"
  "/root/repo/src/bcache/bcache.cc" "src/bcache/CMakeFiles/bsim_bcache.dir/bcache.cc.o" "gcc" "src/bcache/CMakeFiles/bsim_bcache.dir/bcache.cc.o.d"
  "/root/repo/src/bcache/bcache_params.cc" "src/bcache/CMakeFiles/bsim_bcache.dir/bcache_params.cc.o" "gcc" "src/bcache/CMakeFiles/bsim_bcache.dir/bcache_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/bsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
