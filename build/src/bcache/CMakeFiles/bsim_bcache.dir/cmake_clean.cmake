file(REMOVE_RECURSE
  "CMakeFiles/bsim_bcache.dir/addressing.cc.o"
  "CMakeFiles/bsim_bcache.dir/addressing.cc.o.d"
  "CMakeFiles/bsim_bcache.dir/balance.cc.o"
  "CMakeFiles/bsim_bcache.dir/balance.cc.o.d"
  "CMakeFiles/bsim_bcache.dir/bcache.cc.o"
  "CMakeFiles/bsim_bcache.dir/bcache.cc.o.d"
  "CMakeFiles/bsim_bcache.dir/bcache_params.cc.o"
  "CMakeFiles/bsim_bcache.dir/bcache_params.cc.o.d"
  "libbsim_bcache.a"
  "libbsim_bcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_bcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
