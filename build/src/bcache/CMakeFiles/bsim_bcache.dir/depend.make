# Empty dependencies file for bsim_bcache.
# This may be replaced when dependencies are built.
