file(REMOVE_RECURSE
  "libbsim_bcache.a"
)
