# Empty dependencies file for bsim_sim.
# This may be replaced when dependencies are built.
