file(REMOVE_RECURSE
  "libbsim_sim.a"
)
