file(REMOVE_RECURSE
  "CMakeFiles/bsim_sim.dir/amat.cc.o"
  "CMakeFiles/bsim_sim.dir/amat.cc.o.d"
  "CMakeFiles/bsim_sim.dir/config.cc.o"
  "CMakeFiles/bsim_sim.dir/config.cc.o.d"
  "CMakeFiles/bsim_sim.dir/experiment_file.cc.o"
  "CMakeFiles/bsim_sim.dir/experiment_file.cc.o.d"
  "CMakeFiles/bsim_sim.dir/report.cc.o"
  "CMakeFiles/bsim_sim.dir/report.cc.o.d"
  "CMakeFiles/bsim_sim.dir/runner.cc.o"
  "CMakeFiles/bsim_sim.dir/runner.cc.o.d"
  "libbsim_sim.a"
  "libbsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
