file(REMOVE_RECURSE
  "libbsim_cache.a"
)
