
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/base_cache.cc" "src/cache/CMakeFiles/bsim_cache.dir/base_cache.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/base_cache.cc.o.d"
  "/root/repo/src/cache/cache_stats.cc" "src/cache/CMakeFiles/bsim_cache.dir/cache_stats.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/cache_stats.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/cache/CMakeFiles/bsim_cache.dir/hierarchy.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/hierarchy.cc.o.d"
  "/root/repo/src/cache/opt.cc" "src/cache/CMakeFiles/bsim_cache.dir/opt.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/opt.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/cache/CMakeFiles/bsim_cache.dir/replacement.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/replacement.cc.o.d"
  "/root/repo/src/cache/set_assoc_cache.cc" "src/cache/CMakeFiles/bsim_cache.dir/set_assoc_cache.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/set_assoc_cache.cc.o.d"
  "/root/repo/src/cache/tlb.cc" "src/cache/CMakeFiles/bsim_cache.dir/tlb.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/tlb.cc.o.d"
  "/root/repo/src/cache/victim_cache.cc" "src/cache/CMakeFiles/bsim_cache.dir/victim_cache.cc.o" "gcc" "src/cache/CMakeFiles/bsim_cache.dir/victim_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/bsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
