# Empty compiler generated dependencies file for bsim_cache.
# This may be replaced when dependencies are built.
