file(REMOVE_RECURSE
  "CMakeFiles/bsim_cache.dir/base_cache.cc.o"
  "CMakeFiles/bsim_cache.dir/base_cache.cc.o.d"
  "CMakeFiles/bsim_cache.dir/cache_stats.cc.o"
  "CMakeFiles/bsim_cache.dir/cache_stats.cc.o.d"
  "CMakeFiles/bsim_cache.dir/hierarchy.cc.o"
  "CMakeFiles/bsim_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/bsim_cache.dir/opt.cc.o"
  "CMakeFiles/bsim_cache.dir/opt.cc.o.d"
  "CMakeFiles/bsim_cache.dir/replacement.cc.o"
  "CMakeFiles/bsim_cache.dir/replacement.cc.o.d"
  "CMakeFiles/bsim_cache.dir/set_assoc_cache.cc.o"
  "CMakeFiles/bsim_cache.dir/set_assoc_cache.cc.o.d"
  "CMakeFiles/bsim_cache.dir/tlb.cc.o"
  "CMakeFiles/bsim_cache.dir/tlb.cc.o.d"
  "CMakeFiles/bsim_cache.dir/victim_cache.cc.o"
  "CMakeFiles/bsim_cache.dir/victim_cache.cc.o.d"
  "libbsim_cache.a"
  "libbsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
