file(REMOVE_RECURSE
  "libbsim_power.a"
)
