# Empty dependencies file for bsim_power.
# This may be replaced when dependencies are built.
