file(REMOVE_RECURSE
  "CMakeFiles/bsim_power.dir/cacti_lite.cc.o"
  "CMakeFiles/bsim_power.dir/cacti_lite.cc.o.d"
  "CMakeFiles/bsim_power.dir/drowsy.cc.o"
  "CMakeFiles/bsim_power.dir/drowsy.cc.o.d"
  "CMakeFiles/bsim_power.dir/energy_model.cc.o"
  "CMakeFiles/bsim_power.dir/energy_model.cc.o.d"
  "libbsim_power.a"
  "libbsim_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
