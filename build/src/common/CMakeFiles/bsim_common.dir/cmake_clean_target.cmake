file(REMOVE_RECURSE
  "libbsim_common.a"
)
