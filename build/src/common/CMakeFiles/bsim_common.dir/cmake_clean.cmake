file(REMOVE_RECURSE
  "CMakeFiles/bsim_common.dir/json.cc.o"
  "CMakeFiles/bsim_common.dir/json.cc.o.d"
  "CMakeFiles/bsim_common.dir/logging.cc.o"
  "CMakeFiles/bsim_common.dir/logging.cc.o.d"
  "CMakeFiles/bsim_common.dir/random.cc.o"
  "CMakeFiles/bsim_common.dir/random.cc.o.d"
  "CMakeFiles/bsim_common.dir/stats.cc.o"
  "CMakeFiles/bsim_common.dir/stats.cc.o.d"
  "CMakeFiles/bsim_common.dir/strings.cc.o"
  "CMakeFiles/bsim_common.dir/strings.cc.o.d"
  "CMakeFiles/bsim_common.dir/table.cc.o"
  "CMakeFiles/bsim_common.dir/table.cc.o.d"
  "libbsim_common.a"
  "libbsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
