# Empty compiler generated dependencies file for bsim_common.
# This may be replaced when dependencies are built.
