# CMake generated Testfile for 
# Source directory: /root/repo/src/alt
# Build directory: /root/repo/build/src/alt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
