file(REMOVE_RECURSE
  "CMakeFiles/bsim_alt.dir/column_assoc_cache.cc.o"
  "CMakeFiles/bsim_alt.dir/column_assoc_cache.cc.o.d"
  "CMakeFiles/bsim_alt.dir/hac_cache.cc.o"
  "CMakeFiles/bsim_alt.dir/hac_cache.cc.o.d"
  "CMakeFiles/bsim_alt.dir/partial_match_cache.cc.o"
  "CMakeFiles/bsim_alt.dir/partial_match_cache.cc.o.d"
  "CMakeFiles/bsim_alt.dir/skewed_assoc_cache.cc.o"
  "CMakeFiles/bsim_alt.dir/skewed_assoc_cache.cc.o.d"
  "CMakeFiles/bsim_alt.dir/way_halting_cache.cc.o"
  "CMakeFiles/bsim_alt.dir/way_halting_cache.cc.o.d"
  "CMakeFiles/bsim_alt.dir/xor_index_cache.cc.o"
  "CMakeFiles/bsim_alt.dir/xor_index_cache.cc.o.d"
  "libbsim_alt.a"
  "libbsim_alt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_alt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
