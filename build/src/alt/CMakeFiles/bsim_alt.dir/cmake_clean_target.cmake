file(REMOVE_RECURSE
  "libbsim_alt.a"
)
