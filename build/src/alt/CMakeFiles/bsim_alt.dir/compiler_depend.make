# Empty compiler generated dependencies file for bsim_alt.
# This may be replaced when dependencies are built.
