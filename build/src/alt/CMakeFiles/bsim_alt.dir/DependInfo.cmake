
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alt/column_assoc_cache.cc" "src/alt/CMakeFiles/bsim_alt.dir/column_assoc_cache.cc.o" "gcc" "src/alt/CMakeFiles/bsim_alt.dir/column_assoc_cache.cc.o.d"
  "/root/repo/src/alt/hac_cache.cc" "src/alt/CMakeFiles/bsim_alt.dir/hac_cache.cc.o" "gcc" "src/alt/CMakeFiles/bsim_alt.dir/hac_cache.cc.o.d"
  "/root/repo/src/alt/partial_match_cache.cc" "src/alt/CMakeFiles/bsim_alt.dir/partial_match_cache.cc.o" "gcc" "src/alt/CMakeFiles/bsim_alt.dir/partial_match_cache.cc.o.d"
  "/root/repo/src/alt/skewed_assoc_cache.cc" "src/alt/CMakeFiles/bsim_alt.dir/skewed_assoc_cache.cc.o" "gcc" "src/alt/CMakeFiles/bsim_alt.dir/skewed_assoc_cache.cc.o.d"
  "/root/repo/src/alt/way_halting_cache.cc" "src/alt/CMakeFiles/bsim_alt.dir/way_halting_cache.cc.o" "gcc" "src/alt/CMakeFiles/bsim_alt.dir/way_halting_cache.cc.o.d"
  "/root/repo/src/alt/xor_index_cache.cc" "src/alt/CMakeFiles/bsim_alt.dir/xor_index_cache.cc.o" "gcc" "src/alt/CMakeFiles/bsim_alt.dir/xor_index_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/bsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
