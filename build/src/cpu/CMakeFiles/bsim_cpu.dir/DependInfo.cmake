
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/microop.cc" "src/cpu/CMakeFiles/bsim_cpu.dir/microop.cc.o" "gcc" "src/cpu/CMakeFiles/bsim_cpu.dir/microop.cc.o.d"
  "/root/repo/src/cpu/ooo_core.cc" "src/cpu/CMakeFiles/bsim_cpu.dir/ooo_core.cc.o" "gcc" "src/cpu/CMakeFiles/bsim_cpu.dir/ooo_core.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/bsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
