file(REMOVE_RECURSE
  "libbsim_cpu.a"
)
