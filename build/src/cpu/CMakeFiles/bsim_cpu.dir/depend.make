# Empty dependencies file for bsim_cpu.
# This may be replaced when dependencies are built.
