file(REMOVE_RECURSE
  "CMakeFiles/bsim_cpu.dir/microop.cc.o"
  "CMakeFiles/bsim_cpu.dir/microop.cc.o.d"
  "CMakeFiles/bsim_cpu.dir/ooo_core.cc.o"
  "CMakeFiles/bsim_cpu.dir/ooo_core.cc.o.d"
  "libbsim_cpu.a"
  "libbsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
