
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/decoder_model.cc" "src/timing/CMakeFiles/bsim_timing.dir/decoder_model.cc.o" "gcc" "src/timing/CMakeFiles/bsim_timing.dir/decoder_model.cc.o.d"
  "/root/repo/src/timing/logical_effort.cc" "src/timing/CMakeFiles/bsim_timing.dir/logical_effort.cc.o" "gcc" "src/timing/CMakeFiles/bsim_timing.dir/logical_effort.cc.o.d"
  "/root/repo/src/timing/storage_model.cc" "src/timing/CMakeFiles/bsim_timing.dir/storage_model.cc.o" "gcc" "src/timing/CMakeFiles/bsim_timing.dir/storage_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bcache/CMakeFiles/bsim_bcache.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/bsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
