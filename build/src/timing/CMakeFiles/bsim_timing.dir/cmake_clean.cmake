file(REMOVE_RECURSE
  "CMakeFiles/bsim_timing.dir/decoder_model.cc.o"
  "CMakeFiles/bsim_timing.dir/decoder_model.cc.o.d"
  "CMakeFiles/bsim_timing.dir/logical_effort.cc.o"
  "CMakeFiles/bsim_timing.dir/logical_effort.cc.o.d"
  "CMakeFiles/bsim_timing.dir/storage_model.cc.o"
  "CMakeFiles/bsim_timing.dir/storage_model.cc.o.d"
  "libbsim_timing.a"
  "libbsim_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
