# Empty compiler generated dependencies file for bsim_timing.
# This may be replaced when dependencies are built.
