file(REMOVE_RECURSE
  "libbsim_timing.a"
)
