# Empty dependencies file for bsim_mem.
# This may be replaced when dependencies are built.
