file(REMOVE_RECURSE
  "libbsim_mem.a"
)
