file(REMOVE_RECURSE
  "CMakeFiles/bsim_mem.dir/access.cc.o"
  "CMakeFiles/bsim_mem.dir/access.cc.o.d"
  "CMakeFiles/bsim_mem.dir/geometry.cc.o"
  "CMakeFiles/bsim_mem.dir/geometry.cc.o.d"
  "CMakeFiles/bsim_mem.dir/main_memory.cc.o"
  "CMakeFiles/bsim_mem.dir/main_memory.cc.o.d"
  "libbsim_mem.a"
  "libbsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
