file(REMOVE_RECURSE
  "libbsim_workload.a"
)
