# Empty compiler generated dependencies file for bsim_workload.
# This may be replaced when dependencies are built.
