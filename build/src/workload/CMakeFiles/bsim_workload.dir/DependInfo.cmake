
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cc" "src/workload/CMakeFiles/bsim_workload.dir/generators.cc.o" "gcc" "src/workload/CMakeFiles/bsim_workload.dir/generators.cc.o.d"
  "/root/repo/src/workload/istream.cc" "src/workload/CMakeFiles/bsim_workload.dir/istream.cc.o" "gcc" "src/workload/CMakeFiles/bsim_workload.dir/istream.cc.o.d"
  "/root/repo/src/workload/reuse.cc" "src/workload/CMakeFiles/bsim_workload.dir/reuse.cc.o" "gcc" "src/workload/CMakeFiles/bsim_workload.dir/reuse.cc.o.d"
  "/root/repo/src/workload/spec2k.cc" "src/workload/CMakeFiles/bsim_workload.dir/spec2k.cc.o" "gcc" "src/workload/CMakeFiles/bsim_workload.dir/spec2k.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/bsim_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/bsim_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/bsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
