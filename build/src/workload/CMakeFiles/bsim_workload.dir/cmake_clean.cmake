file(REMOVE_RECURSE
  "CMakeFiles/bsim_workload.dir/generators.cc.o"
  "CMakeFiles/bsim_workload.dir/generators.cc.o.d"
  "CMakeFiles/bsim_workload.dir/istream.cc.o"
  "CMakeFiles/bsim_workload.dir/istream.cc.o.d"
  "CMakeFiles/bsim_workload.dir/reuse.cc.o"
  "CMakeFiles/bsim_workload.dir/reuse.cc.o.d"
  "CMakeFiles/bsim_workload.dir/spec2k.cc.o"
  "CMakeFiles/bsim_workload.dir/spec2k.cc.o.d"
  "CMakeFiles/bsim_workload.dir/trace.cc.o"
  "CMakeFiles/bsim_workload.dir/trace.cc.o.d"
  "libbsim_workload.a"
  "libbsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
