/**
 * @file
 * Seed robustness: every table in this repo is generated from one
 * deterministic workload seed. This harness re-derives the headline
 * suite averages (D$ miss-rate reduction of the 8-way cache and the
 * B-Cache at MF=8/BAS=8) under three different seeds and reports the
 * spread — demonstrating the conclusions do not hinge on one RNG draw.
 *
 * The 3 x 26 x 4 (seed, workload, config) cells run on the parallel
 * sweep engine with explicit per-job seeds (`--jobs N` / BSIM_JOBS
 * selects the worker count).
 */

#include "bench/bench_json.hh"
#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main(int argc, char **argv)
{
    banner("ablation_seeds",
           "methodology (workload-seed robustness of the averages)");
    const std::uint64_t n = defaultAccesses(200'000);
    const std::uint64_t seeds[] = {0xb5eedULL, 0x1234'5678ULL,
                                   0xdead'beefULL};
    SweepOptions options;
    options.jobs = consumeJobsFlag(argc, argv);

    const std::vector<CacheConfig> configs = {
        parseCacheSpec("dm:16kB"),
        parseCacheSpec("sa:16kB,8w"),
        parseCacheSpec("bcache:16kB,mf=8,bas=8"),
        parseCacheSpec("dm:16kB+victim:16"),
    };
    std::vector<SweepJob> jobs;
    for (const std::uint64_t seed : seeds)
        for (const auto &b : spec2kNames())
            for (const auto &cfg : configs)
                jobs.push_back(SweepJob::missRate(
                    b, StreamSide::Data, cfg, n, seed));
    const SweepRun run = runSweep(jobs, options);

    Table t({"seed", "dm-miss%", "8way red%", "MF8-BAS8 red%",
             "victim16 red%"});
    RunningStat s_dm, s_8, s_bc, s_v;
    std::size_t cursor = 0;
    for (const std::uint64_t seed : seeds) {
        RunningStat dm, r8, rbc, rv;
        for (std::size_t bi = 0; bi < spec2kNames().size(); ++bi) {
            const double base =
                missResult(run.outcomes[cursor++]).missRate();
            dm.add(100.0 * base);
            r8.add(reductionPct(
                base, missResult(run.outcomes[cursor++]).missRate()));
            rbc.add(reductionPct(
                base, missResult(run.outcomes[cursor++]).missRate()));
            rv.add(reductionPct(
                base, missResult(run.outcomes[cursor++]).missRate()));
        }
        t.row()
            .cell(strprintf("0x%llx",
                            static_cast<unsigned long long>(seed)))
            .cell(dm.mean(), 2)
            .cell(r8.mean(), 1)
            .cell(rbc.mean(), 1)
            .cell(rv.mean(), 1);
        s_dm.add(dm.mean());
        s_8.add(r8.mean());
        s_bc.add(rbc.mean());
        s_v.add(rv.mean());
    }
    t.row()
        .cell("spread(max-min)")
        .cell(s_dm.max() - s_dm.min(), 2)
        .cell(s_8.max() - s_8.min(), 1)
        .cell(s_bc.max() - s_bc.min(), 1)
        .cell(s_v.max() - s_v.min(), 1);
    // Sample (n-1) statistics: the three seeds are draws from the space
    // of possible workload RNG streams, so the population form would
    // understate the across-seed confidence interval.
    t.row()
        .cell("stddev(n-1)")
        .cell(s_dm.sampleStddev(), 2)
        .cell(s_8.sampleStddev(), 1)
        .cell(s_bc.sampleStddev(), 1)
        .cell(s_v.sampleStddev(), 1);
    t.print("suite-average D$ metrics under three workload seeds");
    printSweepSummary(run.summary);
    reportSweepPerf("ablation_seeds", "spec2k-d16k-3seeds",
                    run.summary);
    return 0;
}
