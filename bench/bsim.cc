/**
 * @file
 * The bsim driver binary with perf telemetry wired in: identical to
 * examples/bsim_cli except that sweep-backed runs (--shards) append a
 * record to BENCH_perf.json via bench::reportSweepPerf, so sharded
 * trace replays show up in the repo's perf trajectory alongside the
 * figure/table harnesses. See sim/bsim_driver.hh for the flag set and
 * docs/TRACES.md for the trace workflow.
 */

#include "bench/bench_json.hh"
#include "sim/bsim_driver.hh"

int
main(int argc, char **argv)
{
    bsim::BsimHooks hooks;
    hooks.onSweepDone = [](const std::string &config,
                           const bsim::SweepSummary &summary) {
        bsim::bench::reportSweepPerf("bsim", config, summary);
    };
    return bsim::bsimMain(argc, argv, hooks);
}
