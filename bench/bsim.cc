/**
 * @file
 * The bsim driver binary with perf telemetry and the serving layer
 * wired in: identical to examples/bsim_cli except that sweep-backed
 * runs (--shards) append a record to BENCH_perf.json via
 * bench::reportSweepPerf, and `bsim --serve` / `bsim --connect`
 * delegate to src/serve (bsimd and its client). See sim/bsim_driver.hh
 * for the flag set, docs/TRACES.md for the trace workflow and
 * docs/SERVE.md for the wire protocol.
 */

#include "bench/bench_json.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/bsim_driver.hh"

int
main(int argc, char **argv)
{
    bsim::BsimHooks hooks;
    hooks.onSweepDone = [](const std::string &config,
                           const bsim::SweepSummary &summary) {
        bsim::bench::reportSweepPerf("bsim", config, summary);
    };
    hooks.serveMain = bsim::serve::serveMain;
    hooks.connectMain = bsim::serve::connectMain;
    return bsim::bsimMain(argc, argv, hooks);
}
