/**
 * @file
 * Figure 5 reproduction: instruction-cache miss-rate reductions over the
 * 16 kB direct-mapped baseline for the fifteen benchmarks whose I$ miss
 * rate is non-trivial (Section 4.2 excludes the others).
 */

#include "bench/bench_util.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("fig5_icache_reduction",
           "Figure 5 (I$ miss-rate reductions, 16 kB)");
    const std::uint64_t n = defaultAccesses(1'000'000);
    const auto configs = figure4Configs(16 * 1024);

    std::map<std::string, MissRow> rows;
    for (const auto &b : spec2kIcacheReportedNames())
        rows.emplace(b, runRow(b, StreamSide::Inst, configs, 16 * 1024,
                               n));

    printReductionTable("I$ reduction % (reported benchmarks)",
                        spec2kIcacheReportedNames(), configs, rows);
    return 0;
}
