/**
 * @file
 * Figure 5 reproduction: instruction-cache miss-rate reductions over the
 * 16 kB direct-mapped baseline for the fifteen benchmarks whose I$ miss
 * rate is non-trivial (Section 4.2 excludes the others).
 *
 * The 15 x 10 (workload, config) cells run on the parallel sweep engine
 * (`--jobs N` / BSIM_JOBS selects the worker count).
 */

#include "bench/bench_json.hh"
#include "bench/bench_util.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main(int argc, char **argv)
{
    banner("fig5_icache_reduction",
           "Figure 5 (I$ miss-rate reductions, 16 kB)");
    const std::uint64_t n = defaultAccesses(1'000'000);
    const auto configs = figure4Configs(16 * 1024);
    SweepOptions options;
    options.jobs = consumeJobsFlag(argc, argv);
    // --sample U:P[:W] / BSIM_SAMPLE: estimate the whole grid from
    // sampled units (EXPERIMENTS.md "Sampled replay" cookbook).
    const auto sample = consumeSampleFlag(argc, argv);

    const RowSweep sweep =
        runRows(spec2kIcacheReportedNames(), StreamSide::Inst, configs,
                16 * 1024, n, options, sample);

    printReductionTable("I$ reduction % (reported benchmarks)",
                        spec2kIcacheReportedNames(), configs,
                        sweep.rows);
    printSweepSummary(sweep.summary);
    reportSweepPerf("fig5_icache_reduction", "spec2k-i16k-fig4-grid",
                    sweep.summary);
    return 0;
}
