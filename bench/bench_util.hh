/**
 * @file
 * Helpers shared by the benchmark harnesses: suite iteration, averaged
 * reduction computation and formatting conventions. Every harness prints
 * the rows/series of one paper table or figure (see DESIGN.md's
 * per-experiment index); run lengths honour BSIM_ACCESSES / BSIM_UOPS.
 */

#ifndef BSIM_BENCH_BENCH_UTIL_HH
#define BSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/runner.hh"

namespace bsim {
namespace bench {

/** Miss rates of one workload across configurations, keyed by label. */
using MissRow = std::map<std::string, MissRateResult>;

/**
 * Run one workload side through the baseline plus @p configs; returns
 * results keyed by config label, with "baseline" holding the
 * direct-mapped reference.
 */
inline MissRow
runRow(const std::string &workload, StreamSide side,
       const std::vector<CacheConfig> &configs, std::uint64_t size_bytes,
       std::uint64_t accesses)
{
    MissRow row;
    row.emplace("baseline",
                runMissRate(workload, side,
                            CacheConfig::directMapped(size_bytes),
                            accesses));
    for (const auto &cfg : configs)
        row.emplace(cfg.label,
                    runMissRate(workload, side, cfg, accesses));
    return row;
}

/** Reduction (%) of config @p label over the row's baseline. */
inline double
reductionOf(const MissRow &row, const std::string &label)
{
    return reductionPct(row.at("baseline").missRate(),
                        row.at(label).missRate());
}

/** Print a standard figure table: benchmarks x configs, reductions. */
inline void
printReductionTable(const std::string &title,
                    const std::vector<std::string> &benchmarks,
                    const std::vector<CacheConfig> &configs,
                    const std::map<std::string, MissRow> &rows)
{
    std::vector<std::string> headers{"benchmark", "dm-miss%"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    Table t(headers);
    std::vector<RunningStat> avg(configs.size());
    RunningStat avg_dm;
    for (const auto &b : benchmarks) {
        const MissRow &row = rows.at(b);
        t.row().cell(b).cell(100.0 * row.at("baseline").missRate(), 2);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const double red = reductionOf(row, configs[i].label);
            t.cell(red, 1);
            avg[i].add(red);
        }
        avg_dm.add(100.0 * row.at("baseline").missRate());
    }
    t.row().cell("Ave").cell(avg_dm.mean(), 2);
    for (const auto &a : avg)
        t.cell(a.mean(), 1);
    t.print(title);
}

/** Banner used by every harness. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::printf("==========================================================\n"
                "B-Cache reproduction: %s\n"
                "Paper artefact: %s\n"
                "==========================================================\n",
                experiment, paper_ref);
}

} // namespace bench
} // namespace bsim

#endif // BSIM_BENCH_BENCH_UTIL_HH
