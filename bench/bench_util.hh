/**
 * @file
 * Helpers shared by the benchmark harnesses: suite iteration, averaged
 * reduction computation and formatting conventions. Every harness prints
 * the rows/series of one paper table or figure (see DESIGN.md's
 * per-experiment index); run lengths honour BSIM_ACCESSES / BSIM_UOPS.
 */

#ifndef BSIM_BENCH_BENCH_UTIL_HH
#define BSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"

namespace bsim {
namespace bench {

/** Miss rates of one workload across configurations, keyed by label. */
using MissRow = std::map<std::string, MissRateResult>;

/**
 * Run one workload side through the baseline plus @p configs; returns
 * results keyed by config label, with "baseline" holding the
 * direct-mapped reference.
 */
inline MissRow
runRow(const std::string &workload, StreamSide side,
       const std::vector<CacheConfig> &configs, std::uint64_t size_bytes,
       std::uint64_t accesses)
{
    MissRow row;
    row.emplace("baseline",
                runMissRate(workload, side,
                            parseCacheSpec(
                                "dm:" + std::to_string(size_bytes)),
                            accesses));
    for (const auto &cfg : configs)
        row.emplace(cfg.label,
                    runMissRate(workload, side, cfg, accesses));
    return row;
}

/** Rows of a whole benchmark suite plus the sweep-engine metrics. */
struct RowSweep
{
    std::map<std::string, MissRow> rows;
    SweepSummary summary;
};

/**
 * Parallel equivalent of calling runRow() once per benchmark: one sweep
 * over benchmarks x (baseline + configs), executed by the sweep engine
 * (worker count from @p options — `--jobs` / BSIM_JOBS). Jobs pin
 * kDefaultSeed so the tables match the serial runs in EXPERIMENTS.md.
 */
inline RowSweep
runRows(const std::vector<std::string> &benchmarks, StreamSide side,
        const std::vector<CacheConfig> &configs,
        std::uint64_t size_bytes, std::uint64_t accesses,
        const SweepOptions &options = {},
        const std::optional<SamplePlan> &sample = {})
{
    std::vector<SweepJob> jobs;
    jobs.reserve(benchmarks.size() * (configs.size() + 1));
    for (const auto &b : benchmarks) {
        jobs.push_back(
            SweepJob::missRate(
                b, side,
                parseCacheSpec("dm:" + std::to_string(size_bytes)),
                accesses, kDefaultSeed));
        for (const auto &cfg : configs)
            jobs.push_back(
                SweepJob::missRate(b, side, cfg, accesses,
                                   kDefaultSeed));
    }
    // --sample / BSIM_SAMPLE: every cell runs sampled (sim/sampling.hh)
    // over the same population, so a figure's full grid can be
    // estimated in one pass at a fraction of the simulated accesses.
    if (sample)
        for (SweepJob &j : jobs)
            j.sample = sample;
    const SweepRun run = runSweep(jobs, options);

    RowSweep rs;
    rs.summary = run.summary;
    const std::size_t stride = configs.size() + 1;
    for (std::size_t bi = 0; bi < benchmarks.size(); ++bi) {
        MissRow row;
        row.emplace("baseline", missResult(run.outcomes[bi * stride]));
        for (std::size_t ci = 0; ci < configs.size(); ++ci)
            row.emplace(configs[ci].label,
                        missResult(run.outcomes[bi * stride + 1 + ci]));
        rs.rows.emplace(benchmarks[bi], std::move(row));
    }
    return rs;
}

/** Reduction (%) of config @p label over the row's baseline. */
inline double
reductionOf(const MissRow &row, const std::string &label)
{
    return reductionPct(row.at("baseline").missRate(),
                        row.at(label).missRate());
}

/** Print a standard figure table: benchmarks x configs, reductions. */
inline void
printReductionTable(const std::string &title,
                    const std::vector<std::string> &benchmarks,
                    const std::vector<CacheConfig> &configs,
                    const std::map<std::string, MissRow> &rows)
{
    std::vector<std::string> headers{"benchmark", "dm-miss%"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    Table t(headers);
    std::vector<RunningStat> avg(configs.size());
    RunningStat avg_dm;
    for (const auto &b : benchmarks) {
        const MissRow &row = rows.at(b);
        t.row().cell(b).cell(100.0 * row.at("baseline").missRate(), 2);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const double red = reductionOf(row, configs[i].label);
            t.cell(red, 1);
            avg[i].add(red);
        }
        avg_dm.add(100.0 * row.at("baseline").missRate());
    }
    t.row().cell("Ave").cell(avg_dm.mean(), 2);
    for (const auto &a : avg)
        t.cell(a.mean(), 1);
    t.print(title);
}

/** Banner used by every harness. */
inline void
banner(const char *experiment, const char *paper_ref)
{
    std::printf("==========================================================\n"
                "B-Cache reproduction: %s\n"
                "Paper artefact: %s\n"
                "==========================================================\n",
                experiment, paper_ref);
}

} // namespace bench
} // namespace bsim

#endif // BSIM_BENCH_BENCH_UTIL_HH
