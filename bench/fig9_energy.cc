/**
 * @file
 * Figure 9 reproduction: total memory-related energy of 2/4/8-way L1s,
 * the B-Cache (MF=8, BAS=8) and a 16-entry victim buffer, normalized to
 * the 16 kB direct-mapped baseline, using the Figure 10 equations with
 * the paper's methodology (off-chip = 100x baseline L1 access energy,
 * k_static = 0.5 calibrated on the baseline).
 */

#include "bench/bench_util.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

namespace {

EnergyTotals
evaluate(const CacheConfig &cfg, const TimedResult &run,
         PicoJoules static_per_cycle)
{
    EnergyRates rates = energyRatesFor(cfg, static_per_cycle);
    return SystemEnergyModel(rates).evaluate(run.activity);
}

} // namespace

int
main()
{
    banner("fig9_energy",
           "Figure 9 (normalized memory-related energy)");
    const std::uint64_t uops = defaultUops(400'000);

    const std::vector<CacheConfig> configs = {
        parseCacheSpec("sa:16kB,2w"),
        parseCacheSpec("sa:16kB,4w"),
        parseCacheSpec("sa:16kB,8w"),
        parseCacheSpec("bcache:16kB,mf=8,bas=8"),
        parseCacheSpec("dm:16kB+victim:16"),
    };

    std::vector<std::string> headers{"benchmark"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    Table t(headers);
    std::vector<RunningStat> avg(configs.size());

    for (const auto &b : spec2kNames()) {
        const CacheConfig base_cfg =
            parseCacheSpec("dm:16kB");
        const TimedResult base_run = runTimed(b, base_cfg, uops);
        // Calibrate static power on this benchmark's baseline run.
        const double base_dyn =
            SystemEnergyModel(energyRatesFor(base_cfg))
                .dynamicEnergy(base_run.activity);
        const PicoJoules per_cycle =
            SystemEnergyModel::calibrateStaticPerCycle(
                base_dyn, base_run.cpu.cycles);
        const double base_total =
            evaluate(base_cfg, base_run, per_cycle).total();

        t.row().cell(b);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const TimedResult run = runTimed(b, configs[i], uops);
            const double norm =
                evaluate(configs[i], run, per_cycle).total() /
                base_total;
            t.cell(norm, 3);
            avg[i].add(norm);
        }
    }
    t.row().cell("Ave");
    for (const auto &a : avg)
        t.cell(a.mean(), 3);
    t.print("energy normalized to 16kB direct-mapped baseline");
    return 0;
}
