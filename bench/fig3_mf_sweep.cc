/**
 * @file
 * Figure 3 reproduction: data-cache miss rate and PD hit rate (during
 * misses) of benchmark `wupwise` on a 16 kB B-Cache with BAS = 8 as the
 * memory-address mapping factor MF sweeps 2..512.
 *
 * Expected shape: the PD hit rate stays high while the conflicting
 * 512 kB-strided addresses share PI bits, then collapses once MF crosses
 * the stride (between 32 and 64), dragging the miss rate down with it.
 */

#include "bench/bench_util.hh"
#include "common/strings.hh"

using namespace bsim;

int
main()
{
    bench::banner("fig3_mf_sweep",
                  "Figure 3 (wupwise D$ miss rate & PD hit rate vs MF)");
    const std::uint64_t n = defaultAccesses(2'000'000);

    Table t({"MF", "PI-bits", "D$-miss%", "PD-hit-rate-on-miss%"});
    for (std::uint32_t mf = 2; mf <= 512; mf *= 2) {
        const CacheConfig cfg = CacheConfig::bcache(16 * 1024, mf, 8);
        const MissRateResult r =
            runMissRate("wupwise", StreamSide::Data, cfg, n);
        t.row()
            .cell(strprintf("MF%u", mf))
            .cell(deriveLayout(cfg.bcacheParams()).piBits)
            .cell(100.0 * r.missRate(), 3)
            .cell(100.0 * r.pd->pdHitRateOnMiss(), 1);
    }
    t.print("wupwise, 16kB B-Cache, BAS=8, LRU");
    return 0;
}
