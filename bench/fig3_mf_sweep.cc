/**
 * @file
 * Figure 3 reproduction: data-cache miss rate and PD hit rate (during
 * misses) of benchmark `wupwise` on a 16 kB B-Cache with BAS = 8 as the
 * memory-address mapping factor MF sweeps 2..512.
 *
 * Expected shape: the PD hit rate stays high while the conflicting
 * 512 kB-strided addresses share PI bits, then collapses once MF crosses
 * the stride (between 32 and 64), dragging the miss rate down with it.
 *
 * The nine MF points are independent, so they run on the parallel sweep
 * engine (`--jobs N` / BSIM_JOBS selects the worker count).
 */

#include "bench/bench_json.hh"
#include "bench/bench_util.hh"
#include "common/strings.hh"

using namespace bsim;

int
main(int argc, char **argv)
{
    bench::banner("fig3_mf_sweep",
                  "Figure 3 (wupwise D$ miss rate & PD hit rate vs MF)");
    const std::uint64_t n = defaultAccesses(2'000'000);
    SweepOptions options;
    options.jobs = consumeJobsFlag(argc, argv);

    std::vector<CacheConfig> configs;
    std::vector<SweepJob> jobs;
    for (std::uint32_t mf = 2; mf <= 512; mf *= 2) {
        configs.push_back(parseCacheSpec(
            strprintf("bcache:16kB,mf=%u,bas=8", mf)));
        jobs.push_back(SweepJob::missRate("wupwise", StreamSide::Data,
                                          configs.back(), n,
                                          kDefaultSeed));
    }
    const SweepRun run = runSweep(jobs, options);

    Table t({"MF", "PI-bits", "D$-miss%", "PD-hit-rate-on-miss%"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const MissRateResult &r = missResult(run.outcomes[i]);
        t.row()
            .cell(strprintf("MF%u", configs[i].mf))
            .cell(deriveLayout(configs[i].bcacheParams()).piBits)
            .cell(100.0 * r.missRate(), 3)
            .cell(100.0 * r.pd->pdHitRateOnMiss(), 1);
    }
    t.print("wupwise, 16kB B-Cache, BAS=8, LRU");
    printSweepSummary(run.summary);
    bench::reportSweepPerf("fig3_mf_sweep", "wupwise-16k-bas8-mf2..512",
                           run.summary);
    return 0;
}
