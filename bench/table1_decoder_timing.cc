/**
 * @file
 * Table 1 reproduction: access time of the conventional local wordline
 * decoders (8x256 ... 4x16, i.e. 8 kB ... 512 B subarrays at 32 B lines)
 * versus the B-Cache's split decoder (6-bit CAM PD in parallel with the
 * shortened NPD). The paper's claim: every row has slack, so the B-Cache
 * does not lengthen the cache access time.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "timing/decoder_model.hh"

using namespace bsim;

int
main()
{
    bench::banner("table1_decoder_timing",
                  "Table 1 (decoder timing analysis)");

    Table t({"subarray", "decoder", "orig-comp", "orig-ns", "PD-ns",
             "NPD-comp", "NPD-ns", "slack-ns"});
    bool all_slack = true;
    for (const auto &r : decoderTimingTable(6)) {
        t.row()
            .cell(sizeString(r.subarrayBytes))
            .cell(strprintf("%ux%llu", r.origBits,
                            static_cast<unsigned long long>(r.outputs)))
            .cell(r.original.composition)
            .cell(r.original.delay, 3)
            .cell(r.pd.delay, 3)
            .cell(r.npd.composition)
            .cell(r.npd.delay, 3)
            .cell(r.slack(), 3);
        all_slack &= r.slack() >= 0;
    }
    t.print("logical-effort model @0.18um (PD = 6-bit CAM, MF=8/BAS=8)");
    std::printf("\n%s\n",
                all_slack
                    ? "PASS: every subarray size has decoder slack -- the "
                      "B-Cache adds no access-time overhead (paper 5.1)."
                    : "FAIL: some subarray size lost slack.");
    return all_slack ? 0 : 1;
}
