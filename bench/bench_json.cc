#include "bench/bench_json.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/strings.hh"

namespace bsim {
namespace bench {

namespace {

/** The six required keys and their expected kinds, in emit order. */
struct Field
{
    const char *key;
    JsonValue::Kind kind;
};

constexpr Field kSchema[] = {
    {"bench", JsonValue::Kind::String},
    {"config", JsonValue::Kind::String},
    {"accesses_per_sec", JsonValue::Kind::Number},
    {"wall_s", JsonValue::Kind::Number},
    {"jobs", JsonValue::Kind::Number},
    {"git_rev", JsonValue::Kind::String},
};

std::string
serializeRecord(const PerfRecord &r, const std::string &rev)
{
    JsonWriter w;
    w.beginObject()
        .kv("bench", r.bench)
        .kv("config", r.config)
        .kv("accesses_per_sec", r.accessesPerSec)
        .kv("wall_s", r.wallSeconds)
        .kv("jobs", r.jobs)
        .kv("git_rev", r.gitRev.empty() ? rev : r.gitRev)
        .endObject();
    return w.str();
}

/** One record per line so the log diffs cleanly across commits. */
std::string
serializeLog(const std::vector<std::string> &records)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        out += "  ";
        out += records[i];
        out += i + 1 < records.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

} // namespace

std::string
benchJsonPath()
{
    const char *v = std::getenv("BSIM_BENCH_JSON");
    return v && *v ? v : "BENCH_perf.json";
}

std::string
currentGitRev()
{
    if (const char *v = std::getenv("BSIM_GIT_REV"); v && *v)
        return v;
    if (FILE *p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64] = {};
        const std::size_t n = fread(buf, 1, sizeof(buf) - 1, p);
        pclose(p);
        std::string rev(buf, n);
        while (!rev.empty() &&
               (rev.back() == '\n' || rev.back() == '\r'))
            rev.pop_back();
        if (!rev.empty())
            return rev;
    }
    return "unknown";
}

std::optional<std::size_t>
validatePerfJson(const std::string &text, std::string *error)
{
    std::string perr;
    const std::optional<JsonValue> doc = parseJson(text, &perr);
    if (!doc) {
        if (error)
            *error = "not valid JSON: " + perr;
        return std::nullopt;
    }
    if (!doc->isArray()) {
        if (error)
            *error = strprintf("top-level value is %s, expected array",
                               JsonValue::kindName(doc->kind));
        return std::nullopt;
    }
    for (std::size_t i = 0; i < doc->array.size(); ++i) {
        const JsonValue &rec = doc->array[i];
        if (!rec.isObject()) {
            if (error)
                *error = strprintf("record %zu is %s, expected object",
                                   i, JsonValue::kindName(rec.kind));
            return std::nullopt;
        }
        for (const Field &f : kSchema) {
            const JsonValue *v = rec.find(f.key);
            if (!v) {
                if (error)
                    *error = strprintf("record %zu lacks key \"%s\"", i,
                                       f.key);
                return std::nullopt;
            }
            if (v->kind != f.kind) {
                if (error)
                    *error = strprintf(
                        "record %zu key \"%s\" is %s, expected %s", i,
                        f.key, JsonValue::kindName(v->kind),
                        JsonValue::kindName(f.kind));
                return std::nullopt;
            }
        }
        if (rec.object.size() != std::size(kSchema)) {
            if (error)
                *error = strprintf(
                    "record %zu has %zu keys, expected exactly %zu", i,
                    rec.object.size(), std::size(kSchema));
            return std::nullopt;
        }
    }
    return doc->array.size();
}

std::string
appendPerfRecords(const std::vector<PerfRecord> &records,
                  const std::string &path)
{
    const std::string target = path.empty() ? benchJsonPath() : path;

    // Re-serialize any existing well-formed records; quarantine — never
    // silently clobber — a file this module didn't write.
    std::vector<std::string> lines;
    std::string existing;
    if (readFile(target, existing) && !existing.empty()) {
        std::string verr;
        if (validatePerfJson(existing, &verr)) {
            const std::optional<JsonValue> doc = parseJson(existing);
            for (const JsonValue &rec : doc->array)
                lines.push_back(rec.dump());
        } else {
            const std::string quarantine = target + ".corrupt";
            if (std::rename(target.c_str(), quarantine.c_str()) != 0)
                return "cannot quarantine malformed " + target;
            std::fprintf(stderr,
                         "warning: %s was malformed (%s); moved to %s\n",
                         target.c_str(), verr.c_str(),
                         quarantine.c_str());
        }
    }

    const std::string rev = currentGitRev();
    for (const PerfRecord &r : records)
        lines.push_back(serializeRecord(r, rev));

    // Atomic replace: readers see either the old or the new log.
    const std::string tmp = target + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return "cannot open " + tmp + " for writing";
        out << serializeLog(lines);
        if (!out.flush())
            return "short write to " + tmp;
    }
    if (std::rename(tmp.c_str(), target.c_str()) != 0) {
        std::remove(tmp.c_str());
        return "cannot rename " + tmp + " over " + target;
    }
    return "";
}

std::string
appendPerfRecord(const PerfRecord &record, const std::string &path)
{
    return appendPerfRecords({record}, path);
}

void
reportSweepPerf(const std::string &bench, const std::string &config,
                const SweepSummary &summary)
{
    PerfRecord r;
    r.bench = bench;
    r.config = config;
    r.accessesPerSec = summary.eventsPerSecond();
    r.wallSeconds = summary.wallSeconds;
    r.jobs = summary.threads;
    const std::string err = appendPerfRecord(r);
    if (!err.empty())
        std::fprintf(stderr,
                     "warning: %s not updated: %s\n",
                     benchJsonPath().c_str(), err.c_str());
    else
        // Diagnostics, not results: keep stdout clean for the table /
        // JSON stream (e.g. `bsim --shards N --stats-json -`).
        std::fprintf(stderr, "[perf] %s/%s -> %s\n", bench.c_str(),
                     config.c_str(), benchJsonPath().c_str());
}

} // namespace bench
} // namespace bsim
