/**
 * @file
 * Section 6.8 reproduction: the virtually/physically addressed tag
 * analysis. For each addressing scheme and page size, report whether the
 * B-Cache's decoder (which consumes log2(MF) tag bits *before* set
 * selection) can proceed without waiting for the TLB, and whether the
 * paper's treat-the-borrowed-bits-as-virtual-index workaround is what
 * makes it possible. Also measures the synthetic TLB's behaviour on the
 * suite for context.
 */

#include <cstdio>

#include "bcache/addressing.hh"
#include "bench/bench_util.hh"
#include "cache/tlb.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("sec68_addressing",
           "Section 6.8 (virtual/physical tags and the PD)");

    const BCacheParams p =
        parseCacheSpec("bcache:16kB,mf=8,bas=8").bcacheParams();

    Table t({"scheme", "page", "decoder-top-bit", "translated-bits",
             "decode-before-TLB", "workaround"});
    for (auto scheme : {AddressingScheme::PhysIndexPhysTag,
                        AddressingScheme::VirtIndexPhysTag,
                        AddressingScheme::VirtIndexVirtTag,
                        AddressingScheme::PhysIndexVirtTag}) {
        for (std::uint32_t page : {4096u, 16384u, 65536u}) {
            const AddressingReport r =
                analyzeAddressing(p, scheme, page);
            t.row()
                .cell(addressingSchemeName(scheme))
                .cell(sizeString(page))
                .cell(r.decoderTopBit)
                .cell(r.translatedDecoderBits)
                .cell(r.decodeBeforeTranslate ? "yes" : "NO")
                .cell(r.usesVirtualIndexWorkaround ? "virtual-PD"
                                                   : "-");
        }
    }
    t.print("16kB B-Cache MF8/BAS8: decoder vs translation ordering");

    // Hard case without the workaround: V/P tags, small pages.
    const AddressingReport hard = analyzeAddressing(
        p, AddressingScheme::VirtIndexPhysTag, 4096, false);
    std::printf("\nWithout the workaround, %s fails to decode before "
                "translation (%u borrowed bits above the 4kB page "
                "offset) -- the PowerPC-style hazard of Section 6.8.\n",
                addressingSchemeName(hard.scheme),
                hard.translatedDecoderBits);

    // Context: the synthetic TLB on suite data streams.
    const std::uint64_t n = defaultAccesses(200'000);
    RunningStat tlb_miss;
    for (const auto &b : {"gcc", "mcf", "swim", "equake"}) {
        Tlb tlb(4096, 64, 4);
        SpecWorkload w = makeSpecWorkload(b);
        for (std::uint64_t i = 0; i < n; ++i)
            tlb.translate(w.data->next().addr);
        tlb_miss.add(100.0 * tlb.stats().missRate());
    }
    std::printf("64-entry 4-way data TLB, 4kB pages: %.2f%% average "
                "miss rate on sampled benchmarks.\n",
                tlb_miss.mean());
    return 0;
}
