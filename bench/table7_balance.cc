/**
 * @file
 * Table 7 reproduction: data-cache set-usage balance of the 16 kB
 * direct-mapped baseline versus the B-Cache (MF=8, BAS=8) per benchmark:
 * frequent-hit sets (fhs) and their share of hits (ch), frequent-miss
 * sets (fms) and their share of misses (cm), less-accessed sets (las)
 * and their share of accesses (tca). All values are percentages.
 *
 * Counters come from the observe/ layer: each run rides a StatsObserver
 * and the classification is computed from its per-set histogram. The
 * observer counts line accesses exactly like the built-in usage tracker
 * (tests/test_observe.cc pins the equivalence), so this port left the
 * table byte-identical to the pre-observer version.
 */

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("table7_balance", "Table 7 (D$ memory access behaviour)");
    const std::uint64_t n = defaultAccesses(500'000);

    Table t({"benchmark", "org", "fhs", "ch", "fms", "cm", "las",
             "tca"});
    RunningStat a_fhs[2], a_ch[2], a_fms[2], a_cm[2], a_las[2],
        a_tca[2];

    for (const auto &b : spec2kNames()) {
        const CacheConfig cfgs[2] = {
            parseCacheSpec("dm:16kB"),
            parseCacheSpec("bcache:16kB,mf=8,bas=8"),
        };
        const char *names[2] = {"dm", "bc"};
        for (int i = 0; i < 2; ++i) {
            ObserverConfig observe;
            observe.enabled = true;
            const MissRateResult r = runMissRate(
                b, StreamSide::Data, cfgs[i], n, kDefaultSeed, observe);
            bsim_assert(r.observer,
                        "table7 needs the observer (built with "
                        "-DBSIM_NO_OBSERVE?)");
            const BalanceReport br = analyzeBalance(
                std::span<const SetUsage>(r.observer->perSet));
            t.row()
                .cell(i == 0 ? b : "")
                .cell(names[i])
                .cell(br.fhsPct, 1)
                .cell(br.chPct, 1)
                .cell(br.fmsPct, 1)
                .cell(br.cmPct, 1)
                .cell(br.lasPct, 1)
                .cell(br.tcaPct, 1);
            a_fhs[i].add(br.fhsPct);
            a_ch[i].add(br.chPct);
            a_fms[i].add(br.fmsPct);
            a_cm[i].add(br.cmPct);
            a_las[i].add(br.lasPct);
            a_tca[i].add(br.tcaPct);
        }
    }
    for (int i = 0; i < 2; ++i) {
        t.row()
            .cell(i == 0 ? "Ave" : "")
            .cell(i == 0 ? "dm" : "bc")
            .cell(a_fhs[i].mean(), 1)
            .cell(a_ch[i].mean(), 1)
            .cell(a_fms[i].mean(), 1)
            .cell(a_cm[i].mean(), 1)
            .cell(a_las[i].mean(), 1)
            .cell(a_tca[i].mean(), 1);
    }
    t.print("set-usage balance, 16kB D$ (all values %)");
    return 0;
}
