/**
 * @file
 * Differential-oracle smoke for the bench suite: before trusting any of
 * the figure/table reproductions, run the paper's flagship configurations
 * (plus both exact-equivalence limits) through the verify/ OracleChecker
 * and report the checked-step counts. This is the "is the simulator
 * telling the truth" gate — the fuzz campaign lives in tests/bsim_verify,
 * this hook pins the specific configurations the paper's numbers use.
 */

#include <cstdio>
#include <vector>

#include "common/table.hh"
#include "verify/fuzz.hh"

using namespace bsim;

namespace {

struct Cell
{
    const char *label;
    FuzzSpec spec;
};

FuzzSpec
paperSpec(std::uint32_t mf, std::uint32_t bas, WritePolicy wp,
          std::uint64_t seed)
{
    FuzzSpec s;
    s.params.sizeBytes = 16 * 1024; // the paper's L1 baseline
    s.params.lineBytes = 32;
    s.params.mf = mf;
    s.params.bas = bas;
    s.params.writePolicy = wp;
    s.addrBits = 24;
    s.writebackFraction = 0.01;
    s.seed = seed;
    return s;
}

} // namespace

int
main()
{
    const std::uint64_t steps = 100000;
    std::vector<Cell> cells = {
        {"baseline-dm (BAS=1)",
         paperSpec(1, 1, WritePolicy::WriteBackAllocate, 11)},
        {"paper MF=8 BAS=8",
         paperSpec(8, 8, WritePolicy::WriteBackAllocate, 12)},
        {"paper MF=8 BAS=8 wt",
         paperSpec(8, 8, WritePolicy::WriteThroughNoAllocate, 13)},
        // PI must cover all addrBits-5-6 = 13 upper bits: 2^10 * BAS=8.
        {"saturated-PI (exact SA)",
         paperSpec(1u << 10, 8, WritePolicy::WriteBackAllocate, 14)},
        {"MF=16 BAS=2",
         paperSpec(16, 2, WritePolicy::WriteBackAllocate, 15)},
    };

    Table t({"config", "oracles", "steps", "verdict"});
    int rc = 0;
    for (const Cell &c : cells) {
        const FuzzResult r = runFuzzCase(c.spec, steps);
        t.row()
            .cell(c.label)
            .cell(r.oracleModes)
            .cell(r.steps)
            .cell(r.ok ? "agree" : "DIVERGED");
        if (!r.ok) {
            std::fprintf(stderr, "%s\n%s\n", c.spec.toString().c_str(),
                         r.toString().c_str());
            rc = 1;
        }
    }
    t.print("verify smoke (differential oracles on the paper's configs)");
    return rc;
}
