/**
 * @file
 * Victim-buffer sizing (Section 6.6): the paper argues a buffer larger
 * than 16 entries "may not bring significant miss rate reduction but
 * may increase the buffer's access time and energy". This sweep shows
 * the flattening curve — and that even a large buffer cannot hold the
 * deep-conflict working sets the B-Cache absorbs.
 */

#include "bench/bench_util.hh"
#include "power/cacti_lite.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("ablation_victim_entries",
           "Section 6.6 support (victim-buffer size sweep)");
    const std::uint64_t n = defaultAccesses(300'000);

    Table t({"entries", "suite D$ red%", "equake red%",
             "probe energy (pJ)"});
    for (std::size_t entries : {4u, 8u, 16u, 32u, 64u}) {
        RunningStat red;
        double equake = 0;
        for (const auto &b : spec2kNames()) {
            const double dm =
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec("dm:16kB"), n)
                    .missRate();
            const double v =
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec(strprintf(
                                "dm:16kB+victim:%zu", entries)),
                            n)
                    .missRate();
            const double r = reductionPct(dm, v);
            red.add(r);
            if (b == "equake")
                equake = r;
        }
        t.row()
            .cell(std::uint64_t{entries})
            .cell(red.mean(), 1)
            .cell(equake, 1)
            .cell(CactiLite::victimBufferProbeEnergy(entries, 32), 1);
    }
    // Reference line: the B-Cache for context.
    RunningStat bc;
    for (const auto &b : spec2kNames()) {
        const double dm =
            runMissRate(b, StreamSide::Data,
                        parseCacheSpec("dm:16kB"), n)
                .missRate();
        bc.add(reductionPct(
            dm, runMissRate(b, StreamSide::Data,
                            parseCacheSpec("bcache:16kB,mf=8,bas=8"), n)
                    .missRate()));
    }
    t.row().cell("B-Cache").cell(bc.mean(), 1).cell("").cell("");
    t.print("victim-buffer entries vs reduction (per-probe CAM+read "
            "energy grows with entries)");
    return 0;
}
