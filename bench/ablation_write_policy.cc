/**
 * @file
 * Write-policy ablation: next-level traffic of the baseline and the
 * B-Cache under write-back/write-allocate (the paper's configuration)
 * versus write-through/no-write-allocate, as a downstream design study.
 * Write-through multiplies L2 write traffic by the store rate, while
 * write-back pays only for dirty evictions — the reason the paper's
 * energy evaluation assumes write-back.
 */

#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

namespace {

struct Traffic
{
    double missRate;
    double l2PerKiloAccess; ///< L2-bound events per 1000 L1 accesses
};

Traffic
run(const std::string &bench, CacheConfig cfg, WritePolicy wp,
    std::uint64_t n)
{
    cfg.writePolicy = wp;
    CacheHierarchy h;
    h.setL1D(cfg.build("L1D"));
    h.setL1I(parseCacheSpec("dm:16kB").build("L1I"));
    SpecWorkload w = makeSpecWorkload(bench);
    for (std::uint64_t i = 0; i < n; ++i) {
        const MemAccess a = w.data->next();
        if (a.type == AccessType::Write)
            h.store(a.addr);
        else
            h.load(a.addr);
    }
    const CacheStats &s = h.l1d().stats();
    Traffic t;
    t.missRate = s.missRate();
    t.l2PerKiloAccess = 1000.0 *
                        double(s.refills + s.writebacks +
                               s.writethroughs) /
                        double(s.accesses);
    return t;
}

} // namespace

int
main()
{
    banner("ablation_write_policy",
           "design study (write-back vs write-through L1)");
    const std::uint64_t n = defaultAccesses(300'000);

    Table t({"config", "policy", "D$-miss%", "L2-traffic/1k-acc"});
    RunningStat wb_traffic, wt_traffic;
    for (const auto &cfg : {parseCacheSpec("dm:16kB"),
                            parseCacheSpec("bcache:16kB,mf=8,bas=8")}) {
        RunningStat m_wb, m_wt, t_wb, t_wt;
        for (const auto &b : spec2kNames()) {
            const Traffic wb =
                run(b, cfg, WritePolicy::WriteBackAllocate, n);
            const Traffic wt =
                run(b, cfg, WritePolicy::WriteThroughNoAllocate, n);
            m_wb.add(100.0 * wb.missRate);
            m_wt.add(100.0 * wt.missRate);
            t_wb.add(wb.l2PerKiloAccess);
            t_wt.add(wt.l2PerKiloAccess);
        }
        t.row()
            .cell(cfg.label)
            .cell("write-back")
            .cell(m_wb.mean(), 2)
            .cell(t_wb.mean(), 1);
        t.row()
            .cell("")
            .cell("write-through")
            .cell(m_wt.mean(), 2)
            .cell(t_wt.mean(), 1);
        wb_traffic.add(t_wb.mean());
        wt_traffic.add(t_wt.mean());
    }
    t.print("suite-average L1D behaviour (note: write-through counts "
            "stores in the miss rate when they do not allocate)");
    return 0;
}
