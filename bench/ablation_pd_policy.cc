/**
 * @file
 * Design-space ablation for the decisions DESIGN.md calls out: the BAS
 * sweep (Section 4.3.1: past 8 clusters the returns vanish while PD cost
 * keeps growing) and the forced-replacement consequence of PD hits: the
 * share of misses in which the replacement policy is bypassed, by MF.
 */

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "power/cacti_lite.hh"
#include "timing/storage_model.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("ablation_pd_policy",
           "Sections 4.3.1/6.3 ablations (BAS sweep; PD-forced "
           "replacements)");
    const std::uint64_t n = defaultAccesses(400'000);

    // ---- BAS sweep at MF = 8: miss-rate returns vs hardware cost.
    Table t({"BAS", "PI-bits", "D$ red%", "area-over-base%",
             "energy/access pJ"});
    const StorageCost base_area = conventionalStorage(16 * 1024, 32, 1);
    for (std::uint32_t bas : {1u, 2u, 4u, 8u, 16u, 32u}) {
        RunningStat rd;
        for (const auto &b : spec2kNames()) {
            const double dm =
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec("dm:16kB"), n)
                    .missRate();
            const double bc =
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec(strprintf(
                                "bcache:16kB,mf=8,bas=%u", bas)),
                            n)
                    .missRate();
            rd.add(reductionPct(dm, bc));
        }
        const CacheConfig cfg = parseCacheSpec(
            strprintf("bcache:16kB,mf=8,bas=%u", bas));
        const BCacheParams p = cfg.bcacheParams();
        t.row()
            .cell(bas)
            .cell(deriveLayout(p).piBits)
            .cell(rd.mean(), 1)
            .cell(areaOverheadPct(base_area, bcacheStorage(p)), 2)
            .cell(CactiLite::bcache(p).total(), 1);
    }
    t.print("BAS sweep at MF=8 (LRU): diminishing returns past BAS=8");

    // ---- Forced replacements: fraction of misses where the PD hit
    // pins the victim, by MF (the replacement policy is bypassed).
    Table f({"MF", "PD-hit-on-miss% (D$)", "policy-chosen victims%"});
    for (std::uint32_t mf : {2u, 4u, 8u, 16u, 32u, 64u}) {
        RunningStat ph;
        for (const auto &b : spec2kNames()) {
            const auto r = runMissRate(
                b, StreamSide::Data,
                parseCacheSpec(
                    strprintf("bcache:16kB,mf=%u,bas=8", mf)),
                n);
            ph.add(100.0 * r.pd->pdHitRateOnMiss());
        }
        f.row()
            .cell(strprintf("MF%u", mf))
            .cell(ph.mean(), 1)
            .cell(100.0 - ph.mean(), 1);
    }
    f.print("how often the unique-decoding constraint overrides the "
            "replacement policy");
    return 0;
}
