/**
 * @file
 * Line-size sensitivity: the paper fixes 32 B lines; this ablation
 * sweeps 16/32/64 B at constant capacity and shows the B-Cache's
 * conflict-miss reduction is not an artifact of the line size (MF/BAS
 * derive from the geometry, so the design point adapts automatically).
 */

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("ablation_linesize",
           "design study (line-size sensitivity at 16 kB)");
    const std::uint64_t n = defaultAccesses(300'000);

    Table t({"line", "dm-miss%", "8way red%", "MF8-BAS8 red%",
             "MF16-BAS8 red%"});
    for (std::uint32_t line : {16u, 32u, 64u}) {
        RunningStat dm, r8, rb8, rb16;
        for (const auto &b : spec2kNames()) {
            const double base =
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec(
                                strprintf("dm:16kB,line=%u", line)),
                            n)
                    .missRate();
            dm.add(100.0 * base);
            r8.add(reductionPct(
                base, runMissRate(b, StreamSide::Data,
                                  parseCacheSpec(strprintf(
                                      "sa:16kB,8w,line=%u", line)),
                                  n)
                          .missRate()));
            rb8.add(reductionPct(
                base,
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec(strprintf(
                                "bcache:16kB,mf=8,bas=8,line=%u",
                                line)),
                            n)
                    .missRate()));
            rb16.add(reductionPct(
                base,
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec(strprintf(
                                "bcache:16kB,mf=16,bas=8,line=%u",
                                line)),
                            n)
                    .missRate()));
        }
        t.row()
            .cell(strprintf("%uB", line))
            .cell(dm.mean(), 2)
            .cell(r8.mean(), 1)
            .cell(rb8.mean(), 1)
            .cell(rb16.mean(), 1);
    }
    t.print("suite-average D$ reductions across line sizes");
    return 0;
}
