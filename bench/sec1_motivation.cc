/**
 * @file
 * Section 1 motivation numbers: access time, per-access energy and
 * suite-average miss rates of direct-mapped versus same-sized 8-way
 * caches at 8 kB and 16 kB (the paper quotes a DM cache as 29.5%/19.3%
 * faster and 74.7%/68.8% lower power, but 29-100% worse in miss rate).
 */

#include <cmath>

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "power/cacti_lite.hh"
#include "timing/decoder_model.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

namespace {

/** Access-time proxy from the shared timing model. */
NanoSeconds
accessTime(std::uint64_t size, std::uint32_t ways)
{
    return cacheAccessTime(size, 32, ways);
}

double
suiteMissRate(std::uint64_t size, std::uint32_t ways, StreamSide side,
              std::uint64_t n)
{
    RunningStat s;
    const auto &names = side == StreamSide::Inst
                            ? spec2kIcacheReportedNames()
                            : spec2kNames();
    for (const auto &b : names)
        s.add(runMissRate(b, side,
                          parseCacheSpec(strprintf(
                              "sa:%llu,%uw",
                              static_cast<unsigned long long>(size),
                              ways)),
                          n)
                  .missRate());
    return s.mean();
}

} // namespace

int
main()
{
    banner("sec1_motivation",
           "Section 1 (DM vs 8-way: speed, power, miss rate)");
    const std::uint64_t n = defaultAccesses(300'000);

    Table t({"size", "metric", "direct-mapped", "8-way", "DM advantage"});
    for (std::uint64_t size : {8ull * 1024, 16ull * 1024}) {
        const NanoSeconds t1 = accessTime(size, 1);
        const NanoSeconds t8 = accessTime(size, 8);
        t.row()
            .cell(sizeString(size))
            .cell("access time (ns)")
            .cell(t1, 3)
            .cell(t8, 3)
            .cell(strprintf("%.1f%% faster", 100.0 * (t8 - t1) / t8));

        CacheOrg o;
        o.sizeBytes = size;
        o.lineBytes = 32;
        o.ways = 1;
        const double e1 = CactiLite::conventional(o).total();
        o.ways = 8;
        const double e8 = CactiLite::conventional(o).total();
        t.row()
            .cell("")
            .cell("energy/access (pJ)")
            .cell(e1, 0)
            .cell(e8, 0)
            .cell(strprintf("%.1f%% less power",
                            100.0 * (e8 - e1) / e8));

        const double m1d = suiteMissRate(size, 1, StreamSide::Data, n);
        const double m8d = suiteMissRate(size, 8, StreamSide::Data, n);
        t.row()
            .cell("")
            .cell("D$ miss rate (%)")
            .cell(100.0 * m1d, 2)
            .cell(100.0 * m8d, 2)
            .cell(strprintf("%.1f%% higher misses",
                            100.0 * (m1d - m8d) / m8d));

        const double m1i = suiteMissRate(size, 1, StreamSide::Inst, n);
        const double m8i = suiteMissRate(size, 8, StreamSide::Inst, n);
        t.row()
            .cell("")
            .cell("I$ miss rate (%)")
            .cell(100.0 * m1i, 2)
            .cell(100.0 * m8i, 2)
            .cell(strprintf("%.1f%% higher misses",
                            100.0 * (m1i - m8i) / m8i));
    }
    t.print("the direct-mapped / set-associative tension the B-Cache "
            "resolves");
    return 0;
}
