/**
 * @file
 * Figure 12 reproduction: suite-average miss-rate reductions at L1 sizes
 * of 32 kB and 8 kB (data and instruction caches) for 2/4/8-way caches,
 * victim16 and the B-Cache MF x BAS grid (MF in {2,4,8,16}, BAS in
 * {4,8}).
 */

#include "bench/bench_util.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

namespace {

void
column(Table &t, std::uint64_t size, StreamSide side,
       const std::vector<std::string> &benchmarks, std::uint64_t n,
       std::vector<std::vector<double>> &cells)
{
    (void)t;
    const auto configs = figure12Configs(size);
    std::vector<RunningStat> avg(configs.size());
    for (const auto &b : benchmarks) {
        const MissRow row = runRow(b, side, configs, size, n);
        for (std::size_t i = 0; i < configs.size(); ++i)
            avg[i].add(reductionOf(row, configs[i].label));
    }
    std::vector<double> col;
    for (const auto &a : avg)
        col.push_back(a.mean());
    cells.push_back(std::move(col));
}

} // namespace

int
main()
{
    banner("fig12_sizes",
           "Figure 12 (miss-rate reductions at 32 kB and 8 kB)");
    const std::uint64_t n = defaultAccesses(500'000);

    const auto configs = figure12Configs(8 * 1024); // labels only
    Table t({"config", "32K D$", "32K I$", "8K D$", "8K I$"});

    std::vector<std::vector<double>> cols;
    column(t, 32 * 1024, StreamSide::Data, spec2kNames(), n, cols);
    column(t, 32 * 1024, StreamSide::Inst,
           spec2kIcacheReportedNames(), n, cols);
    column(t, 8 * 1024, StreamSide::Data, spec2kNames(), n, cols);
    column(t, 8 * 1024, StreamSide::Inst, spec2kIcacheReportedNames(),
           n, cols);

    for (std::size_t i = 0; i < configs.size(); ++i) {
        t.row().cell(configs[i].label);
        for (const auto &col : cols)
            t.cell(col[i], 1);
    }
    t.print("suite-average miss-rate reduction % over the same-sized "
            "direct-mapped baseline");
    return 0;
}
