/**
 * @file
 * Schema lint for BENCH_perf.json (driven by scripts/check_bench_json.sh
 * and the `check_bench_json` ctest): validates that a perf log is a JSON
 * array of exactly-schema records.
 *
 * Usage:
 *   bench_json_lint [FILE ...]   lint each file (default: benchJsonPath();
 *                                a missing default file passes — no runs
 *                                have been recorded yet)
 *   bench_json_lint --selftest   exercise the validator on built-in good
 *                                and bad documents, no file I/O
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_json.hh"

using namespace bsim;

namespace {

int
lintFile(const std::string &path, bool missing_ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (missing_ok) {
            std::printf("%s: absent (no perf runs recorded yet) -- ok\n",
                        path.c_str());
            return 0;
        }
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();

    std::string err;
    const auto count = bench::validatePerfJson(ss.str(), &err);
    if (!count) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return 1;
    }
    std::printf("%s: %zu record(s) -- ok\n", path.c_str(), *count);
    return 0;
}

int
selftest()
{
    struct Case
    {
        const char *name;
        const char *text;
        bool valid;
    };
    const Case cases[] = {
        {"empty array", "[]", true},
        {"one record",
         R"([{"bench":"b","config":"c","accesses_per_sec":1.5,)"
         R"("wall_s":2,"jobs":8,"git_rev":"abc1234"}])",
         true},
        {"whitespace tolerated",
         "[\n  {\"bench\": \"b\", \"config\": \"c\",\n"
         "   \"accesses_per_sec\": 1e6, \"wall_s\": 0.25,\n"
         "   \"jobs\": 1, \"git_rev\": \"deadbee\"}\n]\n",
         true},
        {"not json", "{", false},
        {"not an array", "{\"bench\":\"b\"}", false},
        {"record not object", "[42]", false},
        {"missing key",
         R"([{"bench":"b","config":"c","accesses_per_sec":1,)"
         R"("wall_s":2,"jobs":8}])",
         false},
        {"wrong type",
         R"([{"bench":"b","config":"c","accesses_per_sec":"fast",)"
         R"("wall_s":2,"jobs":8,"git_rev":"abc"}])",
         false},
        {"extra key",
         R"([{"bench":"b","config":"c","accesses_per_sec":1,)"
         R"("wall_s":2,"jobs":8,"git_rev":"abc","extra":0}])",
         false},
        {"trailing garbage", "[] x", false},
    };

    int failures = 0;
    for (const Case &c : cases) {
        std::string err;
        const bool got =
            bench::validatePerfJson(c.text, &err).has_value();
        if (got != c.valid) {
            std::fprintf(stderr,
                         "selftest FAIL: %s: expected %s, got %s%s%s\n",
                         c.name, c.valid ? "valid" : "invalid",
                         got ? "valid" : "invalid",
                         err.empty() ? "" : ": ", err.c_str());
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("bench_json_lint selftest: %zu case(s) ok\n",
                    std::size(cases));
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--selftest")
            return selftest();
        files.push_back(arg);
    }
    if (files.empty())
        return lintFile(bench::benchJsonPath(), /*missing_ok=*/true);
    int rc = 0;
    for (const std::string &f : files)
        rc |= lintFile(f, /*missing_ok=*/false);
    return rc;
}
