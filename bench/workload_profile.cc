/**
 * @file
 * Workload characterisation: exact reuse-distance (stack distance)
 * profiles of every synthetic benchmark's data and instruction streams.
 * This documents that the SPEC2K-substitute suite spans the locality
 * classes claimed in DESIGN.md — streaming benchmarks have flat reuse
 * CDFs, conflict benchmarks hit almost fully within the 512-line L1
 * capacity (their direct-mapped misses are *conflict*, not capacity),
 * and Zipf benchmarks sit in between.
 */

#include "bench/bench_util.hh"
#include "workload/reuse.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("workload_profile",
           "DESIGN.md workload characterisation (reuse distances)");
    const std::uint64_t n = defaultAccesses(200'000);

    Table t({"benchmark", "class", "distinct-KB", "hit<512 lines %",
             "hit<4096 lines %", "p90-capacity-KB", "write%",
             "I-footprint-KB"});
    for (const auto &b : spec2kNames()) {
        SpecWorkload w = makeSpecWorkload(b);
        ReuseDistanceProfiler prof(32);
        std::uint64_t writes = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            const MemAccess a = w.data->next();
            prof.observe(a.addr);
            writes += a.type == AccessType::Write;
        }
        ReuseDistanceProfiler iprof(32);
        for (std::uint64_t i = 0; i < n / 4; ++i)
            iprof.observe(w.inst->next().addr);

        t.row()
            .cell(b)
            .cell(w.floatingPoint ? "fp" : "int")
            .cell(double(prof.distinctBlocks()) * 32.0 / 1024.0, 0)
            .cell(100.0 * prof.hitFractionWithin(512), 1)
            .cell(100.0 * prof.hitFractionWithin(4096), 1)
            .cell(double(prof.capacityForHitFraction(0.90)) * 32.0 /
                      1024.0,
                  0)
            .cell(100.0 * double(writes) / double(n), 1)
            .cell(double(iprof.distinctBlocks()) * 32.0 / 1024.0, 1);
    }
    t.print("per-benchmark locality profile (line = 32 B; 512 lines = "
            "one 16kB L1)");
    return 0;
}
