/**
 * @file
 * Tables 5 & 6 reproduction: suite-average data-cache miss-rate
 * reduction (Table 5) and PD hit rate during misses (Table 6) over the
 * MF x BAS grid, exposing the fixed-PD-length design tradeoff of
 * Section 6.3: for the same PD width, a larger MF (design B) beats more
 * clusters (design A) until the PD is long enough (6 bits), where the
 * paper settles on MF = 8, BAS = 8.
 *
 * The 26 x 9 (workload, config) cells run on the parallel sweep engine
 * (`--jobs N` / BSIM_JOBS selects the worker count).
 */

#include <cstdio>

#include "bench/bench_json.hh"
#include "bench/bench_util.hh"
#include "common/bits.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main(int argc, char **argv)
{
    banner("table5_6_mf_bas_pd",
           "Tables 5 & 6 (miss-rate reduction and PD hit rate at varied "
           "MF, BAS, PD)");
    const std::uint64_t n = defaultAccesses(400'000);
    SweepOptions options;
    options.jobs = consumeJobsFlag(argc, argv);

    const std::vector<std::uint32_t> mfs = {2, 4, 8, 16};
    const std::vector<std::uint32_t> bases = {4, 8};

    // One job per (workload, cell): the baseline plus the MF x BAS grid.
    std::vector<SweepJob> jobs;
    for (const auto &b : spec2kNames()) {
        jobs.push_back(
            SweepJob::missRate(b, StreamSide::Data,
                               parseCacheSpec("dm:16kB"), n,
                               kDefaultSeed));
        for (auto bas : bases)
            for (auto mf : mfs)
                jobs.push_back(SweepJob::missRate(
                    b, StreamSide::Data,
                    parseCacheSpec(strprintf(
                        "bcache:16kB,mf=%u,bas=%u", mf, bas)),
                    n,
                    kDefaultSeed));
    }
    const SweepRun run = runSweep(jobs, options);

    std::map<std::pair<unsigned, unsigned>, RunningStat> red, pdhit;
    std::size_t cursor = 0;
    for (std::size_t bi = 0; bi < spec2kNames().size(); ++bi) {
        const double dm = missResult(run.outcomes[cursor++]).missRate();
        for (auto bas : bases)
            for (auto mf : mfs) {
                const MissRateResult &r =
                    missResult(run.outcomes[cursor++]);
                red[{mf, bas}].add(reductionPct(dm, r.missRate()));
                pdhit[{mf, bas}].add(100.0 * r.pd->pdHitRateOnMiss());
            }
    }

    auto grid = [&](const char *title,
                    std::map<std::pair<unsigned, unsigned>,
                             RunningStat> &m) {
        Table t({"", "MF=2", "MF=4", "MF=8", "MF=16"});
        for (auto bas : bases) {
            t.row().cell(strprintf("BAS=%u", bas));
            for (auto mf : mfs)
                t.cell(m[{mf, bas}].mean(), 1);
        }
        t.row().cell("PD bits");
        for (auto mf : mfs)
            t.cell(strprintf("%u/%u", floorLog2(mf) + 2,
                             floorLog2(mf) + 3));
        t.print(title);
    };
    grid("Table 5: D$ miss-rate reduction % (suite average)", red);
    grid("Table 6: PD hit rate during cache misses % (suite average)",
         pdhit);

    std::printf("\nSection 6.3 readout: same-PD pairs are (MF=2,BAS=8) "
                "vs (MF=4,BAS=4) at PD=4 etc.; with a 6-bit PD "
                "affordable (Table 1), MF=8/BAS=8 is the design point.\n");
    printSweepSummary(run.summary);
    reportSweepPerf("table5_6_mf_bas_pd", "spec2k-d16k-mfxbas-grid",
                    run.summary);
    return 0;
}
