/**
 * @file
 * Replacement-policy ablation (Section 3.3): the paper evaluates LRU and
 * random for the B-Cache and argues elaborate policies are unnecessary
 * because BAS = 8 already approaches an 8-way cache. This harness sweeps
 * LRU / random / FIFO / tree-PLRU / NMRU at MF=8, BAS=8.
 */

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("ablation_replacement",
           "Section 3.3 ablation (B-Cache replacement policies)");
    const std::uint64_t n = defaultAccesses(400'000);

    const ReplPolicyKind kinds[] = {
        ReplPolicyKind::LRU, ReplPolicyKind::Random,
        ReplPolicyKind::FIFO, ReplPolicyKind::TreePLRU,
        ReplPolicyKind::NMRU,
    };

    Table t({"policy", "D$ red%", "I$ red%", "state bits/line"});
    for (auto k : kinds) {
        RunningStat rd, ri;
        for (const auto &b : spec2kNames()) {
            const double dm =
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec("dm:16kB"), n)
                    .missRate();
            const double bc =
                runMissRate(b, StreamSide::Data,
                            parseCacheSpec(strprintf(
                                "bcache:16kB,mf=8,bas=8,repl=%s",
                                replPolicyName(k))),
                            n)
                    .missRate();
            rd.add(reductionPct(dm, bc));
        }
        for (const auto &b : spec2kIcacheReportedNames()) {
            const double dm =
                runMissRate(b, StreamSide::Inst,
                            parseCacheSpec("dm:16kB"), n)
                    .missRate();
            const double bc =
                runMissRate(b, StreamSide::Inst,
                            parseCacheSpec(strprintf(
                                "bcache:16kB,mf=8,bas=8,repl=%s",
                                replPolicyName(k))),
                            n)
                    .missRate();
            ri.add(reductionPct(dm, bc));
        }
        const char *bits = k == ReplPolicyKind::Random ? "0"
                           : k == ReplPolicyKind::NMRU ? "log2(BAS)/set"
                           : k == ReplPolicyKind::TreePLRU
                               ? "(BAS-1)/pool"
                               : "log2(BAS)";
        t.row()
            .cell(replPolicyName(k))
            .cell(rd.mean(), 1)
            .cell(ri.mean(), 1)
            .cell(bits);
    }
    t.print("B-Cache MF8/BAS8, 16kB, suite-average reductions");
    return 0;
}
