/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): accesses per
 * second through each cache model and the workload generators, for both
 * the per-access and the batched (accessBatch) hot loops. These guard
 * against performance regressions in the hot simulation loops.
 *
 * Every benchmark drives the same pre-generated address batch. The batch
 * is shared, so it must be strictly read-only: runCache() fingerprints
 * it before and after every timed section and aborts on any mutation.
 * Each timed section also starts from a reset cache so google-benchmark's
 * iteration-estimation passes cannot leak warm state into the measured
 * run.
 *
 * After the run, one BENCH_perf.json record per benchmark is appended
 * (bench = "perf_microbench", config = benchmark name) so the perf
 * trajectory in EXPERIMENTS.md covers the microbenchmarks too.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench/bench_json.hh"
#include "cache/cache_spec.hh"
#include "workload/spec2k.hh"

namespace bsim {
namespace {

constexpr std::size_t kBatchLen = 65536;

/** Pre-generated address batch so stream cost is excluded. */
const std::vector<MemAccess> &
batch()
{
    static const std::vector<MemAccess> accesses = [] {
        SpecWorkload w = makeSpecWorkload("gcc");
        std::vector<MemAccess> v;
        v.reserve(kBatchLen);
        for (std::size_t i = 0; i < kBatchLen; ++i)
            v.push_back(w.data->next());
        return v;
    }();
    return accesses;
}

/** Order-sensitive fingerprint of the shared batch. */
std::uint64_t
batchFingerprint(const std::vector<MemAccess> &b)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const MemAccess &req : b) {
        h ^= req.addr + static_cast<std::uint64_t>(req.type);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Abort if a benchmark mutated the shared (read-only) batch. */
void
checkBatchUnchanged(std::uint64_t before)
{
    if (batchFingerprint(batch()) != before) {
        std::fprintf(stderr,
                     "perf_microbench: shared access batch was mutated "
                     "during a benchmark -- it must stay read-only\n");
        std::abort();
    }
}

void
runCache(benchmark::State &state, BaseCache &cache)
{
    const auto &b = batch();
    const std::uint64_t fp = batchFingerprint(b);
    cache.reset();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(b[i]));
        i = (i + 1) & (kBatchLen - 1);
    }
    state.SetItemsProcessed(state.iterations());
    checkBatchUnchanged(fp);
}

/** Same workload through the batched entry point, kChunk at a time. */
void
runCacheBatched(benchmark::State &state, BaseCache &cache)
{
    constexpr std::size_t kChunk = 256;
    static_assert(kBatchLen % kChunk == 0);
    const auto &b = batch();
    const std::uint64_t fp = batchFingerprint(b);
    cache.reset();
    std::vector<AccessOutcome> outs(kChunk);
    std::size_t i = 0;
    std::uint64_t items = 0;
    while (state.KeepRunningBatch(kChunk)) {
        cache.accessBatch({b.data() + i, kChunk}, outs.data());
        benchmark::DoNotOptimize(outs.data());
        i = (i + kChunk) & (kBatchLen - 1);
        items += kChunk;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
    checkBatchUnchanged(fp);
}

void
BM_DirectMapped(benchmark::State &state)
{
    auto c = parseCacheSpec("dm:16kB").build("dm", 1, nullptr);
    runCache(state, *c);
}
BENCHMARK(BM_DirectMapped);

void
BM_DirectMappedBatched(benchmark::State &state)
{
    auto c = parseCacheSpec("dm:16kB").build("dm", 1, nullptr);
    runCacheBatched(state, *c);
}
BENCHMARK(BM_DirectMappedBatched);

void
BM_EightWayLru(benchmark::State &state)
{
    auto c = parseCacheSpec("sa:16kB,8w").build("8w", 1, nullptr);
    runCache(state, *c);
}
BENCHMARK(BM_EightWayLru);

void
BM_EightWayLruBatched(benchmark::State &state)
{
    auto c = parseCacheSpec("sa:16kB,8w").build("8w", 1, nullptr);
    runCacheBatched(state, *c);
}
BENCHMARK(BM_EightWayLruBatched);

void
BM_BCache(benchmark::State &state)
{
    auto c = parseCacheSpec("bcache:16kB,mf=8,bas=8")
                 .build("bc", 1, nullptr);
    runCache(state, *c);
}
BENCHMARK(BM_BCache);

void
BM_BCacheBatched(benchmark::State &state)
{
    auto c = parseCacheSpec("bcache:16kB,mf=8,bas=8")
                 .build("bc", 1, nullptr);
    runCacheBatched(state, *c);
}
BENCHMARK(BM_BCacheBatched);

void
BM_VictimCache(benchmark::State &state)
{
    auto c = parseCacheSpec("dm:16kB+victim:16").build("vc", 1,
                                                       nullptr);
    runCache(state, *c);
}
BENCHMARK(BM_VictimCache);

void
BM_ColumnAssoc(benchmark::State &state)
{
    auto c = parseCacheSpec("column:16kB").build("col", 1, nullptr);
    runCache(state, *c);
}
BENCHMARK(BM_ColumnAssoc);

void
BM_SkewedAssoc(benchmark::State &state)
{
    auto c = parseCacheSpec("skew:16kB").build("sk", 1, nullptr);
    runCache(state, *c);
}
BENCHMARK(BM_SkewedAssoc);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    SpecWorkload w = makeSpecWorkload("equake");
    for (auto _ : state)
        benchmark::DoNotOptimize(w.data->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_InstructionGeneration(benchmark::State &state)
{
    SpecWorkload w = makeSpecWorkload("gcc");
    for (auto _ : state)
        benchmark::DoNotOptimize(w.inst->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstructionGeneration);

/**
 * Wraps the default console reporter and captures per-benchmark results
 * so main() can append them to BENCH_perf.json after the run.
 */
class CapturingReporter : public benchmark::BenchmarkReporter
{
  public:
    explicit CapturingReporter(benchmark::BenchmarkReporter *inner)
        : inner_(inner)
    {
    }

    bool
    ReportContext(const Context &context) override
    {
        return inner_->ReportContext(context);
    }

    void
    ReportRuns(const std::vector<Run> &report) override
    {
        inner_->ReportRuns(report);
        for (const Run &run : report) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred)
                continue;
            bench::PerfRecord rec;
            rec.bench = "perf_microbench";
            rec.config = run.benchmark_name();
            const auto it = run.counters.find("items_per_second");
            if (it != run.counters.end())
                rec.accessesPerSec = it->second;
            rec.wallSeconds = run.real_accumulated_time;
            rec.jobs = static_cast<unsigned>(run.threads);
            records_.push_back(std::move(rec));
        }
    }

    void
    Finalize() override
    {
        inner_->Finalize();
    }

    const std::vector<bench::PerfRecord> &
    records() const
    {
        return records_;
    }

  private:
    benchmark::BenchmarkReporter *inner_;
    std::vector<bench::PerfRecord> records_;
};

} // namespace
} // namespace bsim

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    std::unique_ptr<benchmark::BenchmarkReporter> console(
        benchmark::CreateDefaultDisplayReporter());
    bsim::CapturingReporter reporter(console.get());
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (!reporter.records().empty()) {
        const std::string err =
            bsim::bench::appendPerfRecords(reporter.records());
        if (!err.empty())
            std::fprintf(stderr, "perf_microbench: %s\n", err.c_str());
        else
            std::printf("[perf] perf_microbench -> %s (%zu records)\n",
                        bsim::bench::benchJsonPath().c_str(),
                        reporter.records().size());
    }
    return 0;
}
