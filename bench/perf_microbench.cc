/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): accesses per
 * second through each cache model and the workload generators. These
 * guard against performance regressions in the hot simulation loops.
 */

#include <benchmark/benchmark.h>

#include "alt/column_assoc_cache.hh"
#include "alt/skewed_assoc_cache.hh"
#include "bcache/bcache.hh"
#include "cache/set_assoc_cache.hh"
#include "cache/victim_cache.hh"
#include "workload/spec2k.hh"

namespace bsim {
namespace {

/** Pre-generated address batch so stream cost is excluded. */
const std::vector<MemAccess> &
batch()
{
    static const std::vector<MemAccess> accesses = [] {
        SpecWorkload w = makeSpecWorkload("gcc");
        std::vector<MemAccess> v;
        v.reserve(65536);
        for (int i = 0; i < 65536; ++i)
            v.push_back(w.data->next());
        return v;
    }();
    return accesses;
}

void
runCache(benchmark::State &state, BaseCache &cache)
{
    const auto &b = batch();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(b[i]));
        i = (i + 1) & 65535;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_DirectMapped(benchmark::State &state)
{
    SetAssocCache c("dm", CacheGeometry(16 * 1024, 32, 1), 1, nullptr);
    runCache(state, c);
}
BENCHMARK(BM_DirectMapped);

void
BM_EightWayLru(benchmark::State &state)
{
    SetAssocCache c("8w", CacheGeometry(16 * 1024, 32, 8), 1, nullptr);
    runCache(state, c);
}
BENCHMARK(BM_EightWayLru);

void
BM_BCache(benchmark::State &state)
{
    BCacheParams p;
    p.sizeBytes = 16 * 1024;
    p.lineBytes = 32;
    p.mf = 8;
    p.bas = 8;
    BCache c("bc", p);
    runCache(state, c);
}
BENCHMARK(BM_BCache);

void
BM_VictimCache(benchmark::State &state)
{
    VictimCache c("vc", CacheGeometry(16 * 1024, 32, 1), 1, nullptr, 16);
    runCache(state, c);
}
BENCHMARK(BM_VictimCache);

void
BM_ColumnAssoc(benchmark::State &state)
{
    ColumnAssocCache c("col", CacheGeometry(16 * 1024, 32, 1), 1,
                       nullptr);
    runCache(state, c);
}
BENCHMARK(BM_ColumnAssoc);

void
BM_SkewedAssoc(benchmark::State &state)
{
    SkewedAssocCache c("sk", CacheGeometry(16 * 1024, 32, 2), 1,
                       nullptr);
    runCache(state, c);
}
BENCHMARK(BM_SkewedAssoc);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    SpecWorkload w = makeSpecWorkload("equake");
    for (auto _ : state)
        benchmark::DoNotOptimize(w.data->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_InstructionGeneration(benchmark::State &state)
{
    SpecWorkload w = makeSpecWorkload("gcc");
    for (auto _ : state)
        benchmark::DoNotOptimize(w.inst->next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstructionGeneration);

} // namespace
} // namespace bsim

BENCHMARK_MAIN();
