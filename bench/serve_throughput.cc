/**
 * @file
 * Server-throughput harness for the serving layer (src/serve): an
 * in-process bsimd over socketpairs, driven by 1, 4 and 8 concurrent
 * clients issuing back-to-back `run` requests. Reports req/s and
 * client-observed p50/p99 latency per client count, and appends one
 * BENCH_perf.json record per row (accesses_per_sec is the aggregate
 * *simulated* access rate — the same unit every other harness records;
 * req/s and latency ride in the config label).
 *
 *   serve_throughput [--requests N] [--accesses N] [--clients a,b,c]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "bench/bench_json.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "common/table.hh"
#include "serve/client.hh"
#include "serve/server.hh"

using namespace bsim;
using namespace bsim::serve;

namespace {

using Clock = std::chrono::steady_clock;

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t requests = 24;  // per client
    std::uint64_t accesses = 50'000;
    std::vector<unsigned> clientCounts = {1, 4, 8};

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--requests"))
            requests = std::strtoull(need("--requests"), nullptr, 0);
        else if (!std::strcmp(argv[i], "--accesses"))
            accesses = std::strtoull(need("--accesses"), nullptr, 0);
        else if (!std::strcmp(argv[i], "--clients")) {
            clientCounts.clear();
            const char *s = need("--clients");
            while (*s) {
                clientCounts.push_back(
                    static_cast<unsigned>(std::strtoul(s, nullptr, 0)));
                const char *comma = std::strchr(s, ',');
                if (!comma)
                    break;
                s = comma + 1;
            }
        } else {
            std::fprintf(stderr,
                         "usage: serve_throughput [--requests N] "
                         "[--accesses N] [--clients a,b,c]\n");
            return 2;
        }
    }

    setFatalThrows(true); // server-side failures become typed errors

    JsonWriter j;
    j.beginObject()
        .kv("op", "run")
        .kv("cache", "bcache:16kB,mf=8,bas=8")
        .kv("workload", "gcc")
        .kv("accesses", accesses)
        .kv("stats", false)
        .endObject();
    const std::string payload = j.str();

    Table t({"clients", "requests", "req/s", "p50-ms", "p99-ms",
             "Macc/s"});
    std::vector<bench::PerfRecord> records;

    for (unsigned clients : clientCounts) {
        ServerOptions so;
        so.workers = std::max(2u, clients);
        so.queueCapacity = 4 * clients * static_cast<std::size_t>(
                                             requests);
        Server server(so);

        std::vector<std::thread> serverSide, clientSide;
        std::vector<std::vector<double>> latencies(clients);
        const Clock::time_point start = Clock::now();
        for (unsigned c = 0; c < clients; ++c) {
            int sp[2];
            if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sp) != 0)
                bsim_fatal("socketpair failed");
            serverSide.emplace_back(
                [&server, fd = sp[0]] { server.serveConnection(fd); });
            clientSide.emplace_back([&, fd = sp[1], c] {
                RpcClient client(fd);
                for (std::uint64_t r = 0; r < requests; ++r) {
                    const Clock::time_point t0 = Clock::now();
                    const RpcResult res =
                        decodeResult(client.call(payload));
                    if (!res.ok)
                        bsim_fatal("request failed: ", res.errorCode,
                                   ": ", res.errorMessage);
                    latencies[c].push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count());
                }
            });
        }
        for (std::thread &th : clientSide)
            th.join();
        const double wall = std::chrono::duration<double>(Clock::now() -
                                                          start)
                                .count();
        for (std::thread &th : serverSide)
            th.join();

        std::vector<double> all;
        for (const auto &v : latencies)
            all.insert(all.end(), v.begin(), v.end());
        const double total =
            static_cast<double>(clients) * static_cast<double>(requests);
        const double reqPerSec = total / wall;
        const double p50 = percentile(all, 0.50);
        const double p99 = percentile(all, 0.99);
        const double accPerSec =
            total * static_cast<double>(accesses) / wall;

        t.row()
            .cell(clients)
            .cell(std::uint64_t(total))
            .cell(reqPerSec, 1)
            .cell(p50, 2)
            .cell(p99, 2)
            .cell(accPerSec / 1e6, 2);

        bench::PerfRecord rec;
        rec.bench = "serve_throughput";
        rec.config = strprintf(
            "clients=%u req/s=%.1f p50=%.2fms p99=%.2fms", clients,
            reqPerSec, p50, p99);
        rec.accessesPerSec = accPerSec;
        rec.wallSeconds = wall;
        rec.jobs = so.workers;
        records.push_back(rec);
    }

    t.print("bsimd throughput (in-process, socketpair transport)");
    const std::string err = bench::appendPerfRecords(records);
    if (!err.empty())
        std::fprintf(stderr, "perf log: %s\n", err.c_str());
    return 0;
}
