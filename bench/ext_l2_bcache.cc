/**
 * @file
 * Extension study: the paper motivates the B-Cache at L1, where access
 * time rules out associativity. Does the idea transfer to the unified
 * L2 (256 kB, 128 B lines), where a direct-mapped array would also be
 * faster than the baseline's 4-way? We compare a direct-mapped L2, the
 * paper's 4-way L2 and a B-Cache L2 (MF = 8, BAS = 8) under identical
 * 16 kB direct-mapped L1s.
 */

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "cache/hierarchy.hh"
#include "cpu/ooo_core.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

namespace {

enum class L2Kind { DirectMapped, FourWay, BCacheL2, BCacheL2HighMf };

struct Result
{
    double l2Miss;
    double ipc;
};

Result
run(const std::string &bench, L2Kind kind, std::uint64_t uops)
{
    const HierarchyParams &hp = kTable4Hierarchy;
    CacheHierarchy h(hp);
    const auto setL2 = [&](const std::string &spec) {
        h.setL2(parseCacheSpec(spec + strprintf(
                    ",line=%u", hp.l2LineBytes))
                    .build("L2", hp.l2HitLatency, &h.memory()));
    };
    const std::string l2Size = strprintf(
        "%llu", static_cast<unsigned long long>(hp.l2SizeBytes));
    switch (kind) {
      case L2Kind::DirectMapped:
        setL2("dm:" + l2Size);
        break;
      case L2Kind::FourWay:
        break; // the default
      case L2Kind::BCacheL2:
        setL2("bcache:" + l2Size + ",mf=8,bas=8");
        break;
      case L2Kind::BCacheL2HighMf:
        setL2("bcache:" + l2Size + ",mf=64,bas=8");
        break;
    }
    h.setL1I(parseCacheSpec("dm:16kB").build("L1I"));
    h.setL1D(parseCacheSpec("dm:16kB").build("L1D"));

    SyntheticProgram prog(makeSpecWorkload(bench), 0xc0ffee);
    OooCore core(CoreParams{}, h);
    const CpuResult cpu = core.run(prog, uops);
    return {h.l2().stats().missRate(), cpu.ipc()};
}

} // namespace

int
main()
{
    banner("ext_l2_bcache",
           "extension (B-Cache as the unified 256 kB L2)");
    const std::uint64_t uops = defaultUops(250'000);

    RunningStat m_dm, m_4w, m_bc, m_bc64, i_dm, i_4w, i_bc, i_bc64;
    for (const auto &b : spec2kNames()) {
        const Result dm = run(b, L2Kind::DirectMapped, uops);
        const Result w4 = run(b, L2Kind::FourWay, uops);
        const Result bc = run(b, L2Kind::BCacheL2, uops);
        const Result bc64 = run(b, L2Kind::BCacheL2HighMf, uops);
        m_dm.add(100.0 * dm.l2Miss);
        m_4w.add(100.0 * w4.l2Miss);
        m_bc.add(100.0 * bc.l2Miss);
        m_bc64.add(100.0 * bc64.l2Miss);
        i_dm.add(dm.ipc);
        i_4w.add(w4.ipc);
        i_bc.add(bc.ipc);
        i_bc64.add(bc64.ipc);
    }

    Table t({"L2 organisation", "L2-miss% (avg)", "IPC (avg)",
             "IPC vs dm-L2%"});
    t.row()
        .cell("direct-mapped")
        .cell(m_dm.mean(), 2)
        .cell(i_dm.mean(), 3)
        .cell(0.0, 1);
    t.row()
        .cell("4-way (paper)")
        .cell(m_4w.mean(), 2)
        .cell(i_4w.mean(), 3)
        .cell(100.0 * (i_4w.mean() - i_dm.mean()) / i_dm.mean(), 1);
    t.row()
        .cell("B-Cache MF8/BAS8")
        .cell(m_bc.mean(), 2)
        .cell(i_bc.mean(), 3)
        .cell(100.0 * (i_bc.mean() - i_dm.mean()) / i_dm.mean(), 1);
    t.row()
        .cell("B-Cache MF64/BAS8")
        .cell(m_bc64.mean(), 2)
        .cell(i_bc64.mean(), 3)
        .cell(100.0 * (i_bc64.mean() - i_dm.mean()) / i_dm.mean(), 1);
    t.print("suite-average unified-L2 comparison (16kB DM L1s). "
            "Reading: L2 tags are diverse, so the short-PD design "
            "point that works at L1 needs a much larger MF at L2 -- "
            "the extension is possible but not free.");
    return 0;
}
