/**
 * @file
 * Figure 8 reproduction: IPC improvement over the 16 kB direct-mapped
 * baseline processor (4-issue OOO, 16-entry window, Table 4 memory
 * system) for 2/4/8-way L1s, the B-Cache (MF=8, BAS=8) and a 16-entry
 * victim buffer, across all 26 benchmarks.
 */

#include "bench/bench_util.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("fig8_ipc", "Figure 8 (IPC improvement over baseline)");
    const std::uint64_t uops = defaultUops(400'000);

    const std::vector<CacheConfig> configs = {
        parseCacheSpec("sa:16kB,2w"),
        parseCacheSpec("sa:16kB,4w"),
        parseCacheSpec("sa:16kB,8w"),
        parseCacheSpec("bcache:16kB,mf=8,bas=8"),
        parseCacheSpec("dm:16kB+victim:16"),
    };

    std::vector<std::string> headers{"benchmark", "base-IPC"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    Table t(headers);
    std::vector<RunningStat> avg(configs.size());

    for (const auto &b : spec2kNames()) {
        const double base =
            runTimed(b, parseCacheSpec("dm:16kB"), uops)
                .ipc();
        t.row().cell(b).cell(base, 3);
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const double ipc = runTimed(b, configs[i], uops).ipc();
            const double imp = 100.0 * (ipc - base) / base;
            t.cell(imp, 1);
            avg[i].add(imp);
        }
    }
    t.row().cell("Ave").cell("");
    for (const auto &a : avg)
        t.cell(a.mean(), 1);
    t.print("IPC improvement % over 16kB direct-mapped baseline");
    return 0;
}
