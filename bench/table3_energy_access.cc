/**
 * @file
 * Table 3 reproduction: per-access energy breakdown (tag/data sense amps,
 * decoders, bit/word lines, CAM search) of the 16 kB baseline and the
 * B-Cache, plus the set-associative alternatives. Paper anchors: the
 * B-Cache spends ~10.5% more per access than the baseline yet remains
 * well below the 2/4/8-way caches.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "power/cacti_lite.hh"

using namespace bsim;

int
main()
{
    bench::banner("table3_energy_access",
                  "Table 3 (energy per cache access, pJ)");

    CacheOrg org;
    org.sizeBytes = 16 * 1024;
    org.lineBytes = 32;

    const BCacheParams p =
        parseCacheSpec("bcache:16kB,mf=8,bas=8").bcacheParams();

    Table t({"organisation", "T-SA", "T-Dec", "T-BL-WL", "D-SA", "D-Dec",
             "D-BL-WL", "D-oth", "CAM", "total", "vs-base%"});
    const CacheEnergyBreakdown base = CactiLite::conventional(org);
    auto add = [&](const std::string &name,
                   const CacheEnergyBreakdown &e) {
        t.row()
            .cell(name)
            .cell(e.tagSense, 1)
            .cell(e.tagDecode, 1)
            .cell(e.tagBitWordline, 1)
            .cell(e.dataSense, 1)
            .cell(e.dataDecode, 1)
            .cell(e.dataBitWordline, 1)
            .cell(e.dataOther, 1)
            .cell(e.camSearch, 1)
            .cell(e.total(), 1)
            .cell(100.0 * (e.total() - base.total()) / base.total(), 1);
    };
    add("baseline (DM)", base);
    add("B-Cache MF8/BAS8", CactiLite::bcache(p));
    for (std::uint32_t w : {2u, 4u, 8u}) {
        CacheOrg o = org;
        o.ways = w;
        add(strprintf("%u-way", w), CactiLite::conventional(o));
    }
    t.print("16kB / 32B lines @0.18um (cacti-lite)");

    const double bc_over = 100.0 *
        (CactiLite::bcache(p).total() - base.total()) / base.total();
    std::printf("\nPaper anchor: B-Cache +10.5%% per access over the "
                "baseline; model: %+.1f%%.\n", bc_over);
    return 0;
}
