/**
 * @file
 * Optimal-replacement headroom analysis supporting Section 3.3: the
 * paper argues that once BAS = 8 makes the B-Cache approach an 8-way
 * cache, inventing cleverer replacement buys little. This harness
 * measures Belady's OPT (offline optimal) at 8-way and fully-associative
 * geometry next to LRU and the B-Cache on the recorded data streams.
 */

#include "bench/bench_util.hh"
#include "cache/opt.hh"
#include "workload/generators.hh"
#include "workload/spec2k.hh"
#include "workload/trace.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("bound_opt",
           "Section 3.3 support (Belady OPT headroom vs LRU/B-Cache)");
    const std::uint64_t n = defaultAccesses(300'000);

    Table t({"benchmark", "dm%", "8way-LRU%", "MF16-BAS8%", "OPT-8way%",
             "OPT-full%", "cold%"});
    RunningStat a_dm, a_lru, a_bc, a_opt8, a_optf, a_cold;

    for (const auto &b : spec2kNames()) {
        // Record the exact stream once so every estimator sees the
        // identical reference sequence.
        SpecWorkload w = makeSpecWorkload(b);
        RecordingStream rec(std::move(w.data));
        for (std::uint64_t i = 0; i < n; ++i)
            rec.next();
        const auto &trace = rec.recorded();

        auto run = [&](const CacheConfig &cfg) {
            VectorStream replay(trace);
            return runMissRateOn(replay, cfg, trace.size(), b)
                .missRate();
        };
        const double dm = run(parseCacheSpec("dm:16kB"));
        const double lru = run(parseCacheSpec("sa:16kB,8w"));
        const double bc = run(parseCacheSpec("bcache:16kB,mf=16,bas=8"));
        const OptResult opt8 =
            optSimulate(trace, CacheGeometry(16 * 1024, 32, 8));
        const OptResult optf =
            optSimulate(trace, CacheGeometry(16 * 1024, 32, 512));

        t.row()
            .cell(b)
            .cell(100.0 * dm, 2)
            .cell(100.0 * lru, 2)
            .cell(100.0 * bc, 2)
            .cell(100.0 * opt8.missRate(), 2)
            .cell(100.0 * optf.missRate(), 2)
            .cell(100.0 * double(optf.coldMisses) /
                      double(optf.accesses),
                  2);
        a_dm.add(dm);
        a_lru.add(lru);
        a_bc.add(bc);
        a_opt8.add(opt8.missRate());
        a_optf.add(optf.missRate());
        a_cold.add(double(optf.coldMisses) / double(optf.accesses));
    }
    t.row()
        .cell("Ave")
        .cell(100.0 * a_dm.mean(), 2)
        .cell(100.0 * a_lru.mean(), 2)
        .cell(100.0 * a_bc.mean(), 2)
        .cell(100.0 * a_opt8.mean(), 2)
        .cell(100.0 * a_optf.mean(), 2)
        .cell(100.0 * a_cold.mean(), 2);
    t.print("16kB D$ miss rates: measured vs offline-optimal bounds");
    return 0;
}
