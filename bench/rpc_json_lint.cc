/**
 * @file
 * Schema lint for bsim-rpc-v1 response envelopes (src/serve/rpc.hh),
 * driven by scripts/check_rpc_json.sh and the `check_rpc_json` ctest.
 * The envelope shape is produced by okEnvelope()/errorEnvelope() —
 * change them, validateRpcEnvelope() and this lint's cases together
 * with docs/SERVE.md.
 *
 * Usage:
 *   rpc_json_lint FILE...     lint each file (one envelope per file)
 *   rpc_json_lint --selftest  exercise the validator on built-in good
 *                             and bad envelopes, no file I/O
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/rpc.hh"

using namespace bsim;
using namespace bsim::serve;

namespace {

int
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!validateRpcEnvelope(ss.str(), &err)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return 1;
    }
    std::printf("%s: bsim-rpc-v1 -- ok\n", path.c_str());
    return 0;
}

int
selftest()
{
    struct Case
    {
        const char *name;
        std::string text;
        bool valid;
    };
    const Case cases[] = {
        {"ok with object body",
         okEnvelope(R"({"schema":"bsim-stats-v1","x":1})"), true},
        {"ok with array body (sharded --json)",
         okEnvelope(R"([{"a":1},{"a":2}])"), true},
        {"every typed error code", "", true}, // expanded below
        {"error envelope",
         errorEnvelope(RpcErrorCode::Overloaded, "queue full"), true},
        {"not json", "{", false},
        {"top-level array", "[]", false},
        {"missing version", R"({"ok":true,"body":{}})", false},
        {"wrong version",
         R"({"bsim-rpc":"v2","ok":true,"body":{}})", false},
        {"ok without body", R"({"bsim-rpc":"v1","ok":true})", false},
        {"ok with error arm",
         R"({"bsim-rpc":"v1","ok":true,"body":{},)"
         R"("error":{"code":"internal","message":"x"}})",
         false},
        {"failure without error",
         R"({"bsim-rpc":"v1","ok":false})", false},
        {"failure with body arm",
         R"({"bsim-rpc":"v1","ok":false,"body":{},)"
         R"("error":{"code":"internal","message":"x"}})",
         false},
        {"unknown error code",
         R"({"bsim-rpc":"v1","ok":false,)"
         R"("error":{"code":"teapot","message":"x"}})",
         false},
        {"error missing message",
         R"({"bsim-rpc":"v1","ok":false,)"
         R"("error":{"code":"overloaded"}})",
         false},
        {"ok not a boolean",
         R"({"bsim-rpc":"v1","ok":1,"body":{}})", false},
    };

    int failures = 0;
    auto check = [&](const char *name, const std::string &text,
                     bool valid) {
        std::string err;
        const bool got = validateRpcEnvelope(text, &err);
        if (got != valid) {
            std::fprintf(stderr,
                         "selftest FAIL: %s: expected %s, got %s%s%s\n",
                         name, valid ? "valid" : "invalid",
                         got ? "valid" : "invalid",
                         err.empty() ? "" : ": ", err.c_str());
            ++failures;
        }
    };
    for (const Case &c : cases) {
        if (!std::strcmp(c.name, "every typed error code")) {
            for (int i = 0;
                 i <= static_cast<int>(RpcErrorCode::Internal); ++i)
                check(rpcErrorName(static_cast<RpcErrorCode>(i)),
                      errorEnvelope(static_cast<RpcErrorCode>(i), "m"),
                      true);
            continue;
        }
        check(c.name, c.text, c.valid);
    }
    if (failures == 0)
        std::printf("rpc_json_lint selftest: ok\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--selftest")
            return selftest();
        files.push_back(arg);
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: rpc_json_lint FILE... | --selftest\n");
        return 2;
    }
    int rc = 0;
    for (const std::string &f : files)
        rc |= lintFile(f);
    return rc;
}
