/**
 * @file
 * Table 2 reproduction: storage cost in SRAM-bit equivalents of the
 * 16 kB direct-mapped baseline versus the B-Cache (MF=8, BAS=8), whose
 * CAM cells are 25% larger than SRAM cells; plus the conventional
 * set-associative alternatives for context (Section 5.3: the B-Cache
 * adds 4.3% to the baseline's area).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "timing/storage_model.hh"

using namespace bsim;

int
main()
{
    bench::banner("table2_storage", "Table 2 (storage cost analysis)");

    const StorageCost base = conventionalStorage(16 * 1024, 32, 1);
    const BCacheParams p =
        parseCacheSpec("bcache:16kB,mf=8,bas=8").bcacheParams();
    const StorageCost bc = bcacheStorage(p);

    Table t({"organisation", "tag-bits", "data-bits", "CAM-bits",
             "repl-bits", "SRAM-equiv", "overhead%"});
    auto add = [&](const std::string &name, const StorageCost &c) {
        t.row()
            .cell(name)
            .cell(c.tagBits)
            .cell(c.dataBits)
            .cell(c.camBits)
            .cell(c.replBits)
            .cell(c.sramEquivalent(), 0)
            .cell(areaOverheadPct(base, c), 2);
    };
    add("16kB direct-mapped (baseline)", base);
    add("16kB B-Cache MF8/BAS8", bc);
    add("16kB 2-way", conventionalStorage(16 * 1024, 32, 2));
    add("16kB 4-way", conventionalStorage(16 * 1024, 32, 4));
    add("16kB 8-way", conventionalStorage(16 * 1024, 32, 8));
    t.print("storage cost (32-bit addresses, 32 B lines; CAM cell = "
            "1.25x SRAM cell)");

    std::printf("\nPaper anchor: baseline tag 20b x 512, data 256b x 512;"
                " B-Cache tag 17b x 512 + 64x(6x8) + 32x(6x16) CAMs "
                "=> +4.3%% area. Model: %+.2f%%.\n",
                areaOverheadPct(base, bc));
    return 0;
}
