/**
 * @file
 * Context-switch robustness: the B-Cache's decoders are *programmed
 * state*, so after a context switch the new program must reprogram the
 * PDs through its own misses. This study interleaves two benchmarks'
 * data streams at varying quantum lengths and checks whether the
 * B-Cache's relearning cost is any worse than the refill cost every
 * cache pays — it is not, because a PD entry reprograms on exactly the
 * miss that would have refilled the line anyway.
 */

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "workload/generators.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

namespace {

AccessStreamPtr
switchingStream(const char *a, const char *b, std::uint64_t quantum)
{
    std::vector<AccessStreamPtr> kids;
    kids.push_back(makeSpecWorkload(a).data);
    kids.push_back(makeSpecWorkload(b).data);
    return std::make_unique<PhasedStream>(
        std::move(kids), std::vector<std::uint64_t>{quantum, quantum});
}

} // namespace

int
main()
{
    banner("ablation_context_switch",
           "design study (PD reprogramming across context switches)");
    const std::uint64_t n = defaultAccesses(400'000);

    const std::vector<CacheConfig> configs = {
        parseCacheSpec("dm:16kB"),
        parseCacheSpec("sa:16kB,8w"),
        parseCacheSpec("bcache:16kB,mf=8,bas=8"),
        parseCacheSpec("dm:16kB+victim:16"),
    };

    Table t({"quantum", "dm miss%", "8way miss%", "MF8-BAS8 miss%",
             "victim16 miss%", "MF8 pd-hit-on-miss%"});
    for (std::uint64_t quantum :
         {1'000ull, 10'000ull, 100'000ull, 10'000'000ull}) {
        std::vector<double> miss;
        double pdhit = 0;
        for (const auto &cfg : configs) {
            auto stream = switchingStream("gcc", "equake", quantum);
            const MissRateResult r =
                runMissRateOn(*stream, cfg, n, "gcc+equake");
            miss.push_back(100.0 * r.missRate());
            if (r.pd)
                pdhit = 100.0 * r.pd->pdHitRateOnMiss();
        }
        t.row()
            .cell(quantum >= n ? std::string("none")
                               : strprintf("%llu",
                                           static_cast<unsigned long
                                                       long>(quantum)))
            .cell(miss[0], 2)
            .cell(miss[1], 2)
            .cell(miss[2], 2)
            .cell(miss[3], 2)
            .cell(pdhit, 1);
    }
    t.print("gcc/equake alternating data streams, 16kB D$ (quantum = "
            "accesses per program before switching)");
    return 0;
}
