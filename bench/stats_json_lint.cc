/**
 * @file
 * Schema lint for "bsim-stats-v1" documents (`bsim --stats-json`),
 * driven by scripts/check_stats_json.sh and the `check_stats_json`
 * ctest. The schema is produced by sim/report.cc (toStatsJson) and the
 * observe/ export layer — change them and this validator together.
 *
 * Usage:
 *   stats_json_lint FILE...     lint each document
 *   stats_json_lint --selftest  exercise the validator on built-in good
 *                               and bad documents, no file I/O
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

using namespace bsim;

namespace {

/** Validation state: first failure wins, the rest short-circuit. */
struct Lint
{
    std::string error;

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what;
        return false;
    }

    bool ok() const { return error.empty(); }
};

const JsonValue *
member(Lint &l, const JsonValue &obj, const std::string &key,
       bool required, const char *where)
{
    const JsonValue *v = obj.find(key);
    if (!v && required)
        l.fail(std::string(where) + ": missing key '" + key + "'");
    return v;
}

bool
expectNumber(Lint &l, const JsonValue *v, const char *where)
{
    if (!v)
        return false;
    if (!v->isNumber())
        return l.fail(std::string(where) + ": expected a number");
    return true;
}

bool
expectString(Lint &l, const JsonValue *v, const char *where)
{
    if (!v)
        return false;
    if (!v->isString())
        return l.fail(std::string(where) + ": expected a string");
    return true;
}

/** An array of numbers, optionally of exactly @p want elements. */
bool
numberArray(Lint &l, const JsonValue *v, const char *where,
            std::size_t want = ~std::size_t{0})
{
    if (!v)
        return false;
    if (!v->isArray())
        return l.fail(std::string(where) + ": expected an array");
    if (want != ~std::size_t{0} && v->array.size() != want)
        return l.fail(std::string(where) + ": expected " +
                      std::to_string(want) + " element(s), got " +
                      std::to_string(v->array.size()));
    for (const JsonValue &e : v->array)
        if (!e.isNumber())
            return l.fail(std::string(where) +
                          ": non-number array element");
    return true;
}

/** Exactly the keys in @p keys, all numbers. */
bool
numberObject(Lint &l, const JsonValue *v,
             const std::vector<const char *> &keys, const char *where)
{
    if (!v)
        return false;
    if (!v->isObject())
        return l.fail(std::string(where) + ": expected an object");
    for (const char *k : keys)
        expectNumber(l, member(l, *v, k, true, where), where);
    if (v->object.size() != keys.size())
        return l.fail(std::string(where) + ": unexpected extra key");
    return l.ok();
}

void
lintStats(Lint &l, const JsonValue *stats, const char *where)
{
    if (!numberObject(l, stats,
                      {"accesses", "hits", "misses", "missRate",
                       "readAccesses", "readMisses", "writeAccesses",
                       "writeMisses", "fetchAccesses", "fetchMisses",
                       "writebacks", "writethroughs", "refills"},
                      where))
        return;
    const double acc = stats->find("accesses")->number;
    const double hit = stats->find("hits")->number;
    const double mis = stats->find("misses")->number;
    if (hit + mis != acc)
        l.fail(std::string(where) + ": hits + misses != accesses");
}

void
lintObserver(Lint &l, const JsonValue &obs, const char *where)
{
    if (!obs.isObject()) {
        l.fail(std::string(where) + ": expected an object");
        return;
    }
    const JsonValue *per = member(l, obs, "perSet", true, where);
    if (per && per->isObject()) {
        const JsonValue *lines = member(l, *per, "lines", true, where);
        if (expectNumber(l, lines, where)) {
            const auto n = static_cast<std::size_t>(lines->number);
            numberArray(l, member(l, *per, "accesses", true, where),
                        "perSet.accesses", n);
            numberArray(l, member(l, *per, "hits", true, where),
                        "perSet.hits", n);
            numberArray(l, member(l, *per, "misses", true, where),
                        "perSet.misses", n);
            numberArray(l, member(l, *per, "installs", true, where),
                        "perSet.installs", n);
        }
    } else if (per) {
        l.fail(std::string(where) + ".perSet: expected an object");
    }
    numberObject(l, member(l, obs, "balanceMetrics", true, where),
                 {"maxRefs", "meanRefs", "maxOverMean", "cov", "gini"},
                 "balanceMetrics");
    expectNumber(l, member(l, obs, "writebacks", true, where),
                 "observer.writebacks");
    if (const JsonValue *iv = obs.find("intervals")) {
        if (!iv->isObject()) {
            l.fail("intervals: expected an object");
            return;
        }
        const JsonValue *len = member(l, *iv, "length", true,
                                      "intervals");
        if (expectNumber(l, len, "intervals.length") &&
            len->number <= 0)
            l.fail("intervals.length: must be positive");
        const JsonValue *samples = member(l, *iv, "samples", true,
                                          "intervals");
        if (samples && samples->isArray()) {
            for (const JsonValue &s : samples->array)
                numberObject(l, &s,
                             {"accesses", "misses", "writebacks",
                              "pdReprograms"},
                             "intervals.samples[]");
        } else if (samples) {
            l.fail("intervals.samples: expected an array");
        }
    }
    if (const JsonValue *pd = obs.find("pd")) {
        if (!pd->isObject()) {
            l.fail("observer.pd: expected an object");
            return;
        }
        expectNumber(l, member(l, *pd, "reprograms", true,
                               "observer.pd"),
                     "observer.pd.reprograms");
        numberArray(l, member(l, *pd, "reprogramsPerGroup", true,
                              "observer.pd"),
                    "observer.pd.reprogramsPerGroup");
        numberArray(l, member(l, *pd, "occupancyPerGroup", true,
                              "observer.pd"),
                    "observer.pd.occupancyPerGroup");
    }
}

/** The sampled-replay evidence object emitted instead of "balance". */
void
lintSample(Lint &l, const JsonValue *sample, const char *where)
{
    if (!numberObject(l, sample,
                      {"unitLen", "period", "warmup", "records",
                       "units", "sampledFraction", "estimate", "stderr",
                       "ci95lo", "ci95hi", "mpki"},
                      where))
        return;
    const double lo = sample->find("ci95lo")->number;
    const double hi = sample->find("ci95hi")->number;
    const double est = sample->find("estimate")->number;
    if (lo > est || est > hi)
        l.fail(std::string(where) +
               ": estimate outside its own 95% CI");
    if (sample->find("unitLen")->number <= 0)
        l.fail(std::string(where) + ".unitLen: must be positive");
}

/**
 * One run body: top level of single runs, elements of "shards". Run
 * bodies carry "sample" XOR "balance" (sampled replays run a fresh
 * cache per unit, so there is no per-set usage to classify); the
 * sharded top level may carry both — a merged sample next to an
 * observer-derived balance — so it passes @p allow_both.
 */
void
lintRunBody(Lint &l, const JsonValue &run, bool balance_required,
            bool allow_both, const char *where)
{
    expectString(l, member(l, run, "workload", true, where),
                 "workload");
    expectString(l, member(l, run, "config", true, where), "config");
    lintStats(l, member(l, run, "stats", true, where), "stats");
    if (const JsonValue *pd = run.find("pd"))
        numberObject(l, pd,
                     {"pdHitCacheMiss", "pdMiss", "pdHitRateOnMiss",
                      "missPredictionRate"},
                     "pd");
    if (const JsonValue *vh = run.find("victimHits"))
        expectNumber(l, vh, "victimHits");
    const JsonValue *sample = run.find("sample");
    if (sample)
        lintSample(l, sample, "sample");
    const JsonValue *bal =
        member(l, run, "balance", balance_required && !sample, where);
    if (bal && sample && !allow_both)
        l.fail(std::string(where) +
               ": sample and balance are mutually exclusive");
    if (bal)
        numberObject(l, bal,
                     {"frequentHitSetsPct", "hitsInFrequentHitSetsPct",
                      "frequentMissSetsPct",
                      "missesInFrequentMissSetsPct",
                      "lessAccessedSetsPct",
                      "accessesInLessAccessedSetsPct"},
                     "balance");
    if (const JsonValue *obs = run.find("observer"))
        lintObserver(l, *obs, "observer");
}

bool
validateStatsJson(const std::string &text, std::string *error)
{
    Lint l;
    std::string perr;
    const auto doc = parseJson(text, &perr);
    if (!doc) {
        if (error)
            *error = "parse: " + perr;
        return false;
    }
    if (!doc->isObject()) {
        if (error)
            *error = "top level: expected an object";
        return false;
    }
    const JsonValue *schema = member(l, *doc, "schema", true, "top");
    if (expectString(l, schema, "schema") &&
        schema->string != "bsim-stats-v1")
        l.fail("schema: expected \"bsim-stats-v1\", got \"" +
               schema->string + "\"");
    const JsonValue *driver = member(l, *doc, "driver", true, "top");
    std::string d;
    if (expectString(l, driver, "driver")) {
        d = driver->string;
        if (d != "workload" && d != "trace" && d != "sharded")
            l.fail("driver: must be workload, trace or sharded");
    }
    if (l.ok()) {
        // Sharded documents may lack a top-level balance (only present
        // when the replay was observed); single runs always carry a
        // balance or, when sampled, a sample object in its place.
        lintRunBody(l, *doc, /*balance_required=*/d != "sharded",
                    /*allow_both=*/d == "sharded", "top");
    }
    if (d == "sharded") {
        const JsonValue *shards = member(l, *doc, "shards", true,
                                         "top");
        if (shards && shards->isArray()) {
            for (const JsonValue &s : shards->array) {
                if (!s.isObject()) {
                    l.fail("shards[]: expected an object");
                    break;
                }
                lintRunBody(l, s, /*balance_required=*/true,
                            /*allow_both=*/false, "shards[]");
            }
        } else if (shards) {
            l.fail("shards: expected an array");
        }
    } else if (doc->find("shards")) {
        l.fail("shards: only sharded documents carry a shards array");
    }
    if (!l.ok() && error)
        *error = l.error;
    return l.ok();
}

int
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!validateStatsJson(ss.str(), &err)) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
        return 1;
    }
    std::printf("%s: bsim-stats-v1 -- ok\n", path.c_str());
    return 0;
}

const char *kGoodStats =
    R"("stats":{"accesses":10,"hits":8,"misses":2,"missRate":0.2,)"
    R"("readAccesses":5,"readMisses":1,"writeAccesses":5,)"
    R"("writeMisses":1,"fetchAccesses":0,"fetchMisses":0,)"
    R"("writebacks":1,"writethroughs":0,"refills":2})";

const char *kGoodBalance =
    R"("balance":{"frequentHitSetsPct":1,"hitsInFrequentHitSetsPct":2,)"
    R"("frequentMissSetsPct":3,"missesInFrequentMissSetsPct":4,)"
    R"("lessAccessedSetsPct":5,"accessesInLessAccessedSetsPct":6})";

const char *kGoodSample =
    R"("sample":{"unitLen":100,"period":1000,"warmup":200,)"
    R"("records":5000,"units":5,"sampledFraction":0.1,)"
    R"("estimate":0.2,"stderr":0.01,"ci95lo":0.18,"ci95hi":0.22,)"
    R"("mpki":200})";

const char *kGoodObserver =
    R"("observer":{"perSet":{"lines":2,"accesses":[6,4],"hits":[5,3],)"
    R"("misses":[1,1],"installs":[1,1]},"balanceMetrics":{"maxRefs":6,)"
    R"("meanRefs":5,"maxOverMean":1.2,"cov":0.2,"gini":0.1},)"
    R"("writebacks":1,"intervals":{"length":5,"samples":[{"accesses":5,)"
    R"("misses":1,"writebacks":0,"pdReprograms":0}]},"pd":{)"
    R"("reprograms":1,"reprogramsPerGroup":[1],"occupancyPerGroup":[2]}})";

int
selftest()
{
    struct Case
    {
        const char *name;
        std::string text;
        bool valid;
    };
    const std::string head =
        R"({"schema":"bsim-stats-v1","driver":"trace",)"
        R"("workload":"trace:t.bst","config":"dm-16kB",)";
    const Case cases[] = {
        {"minimal run",
         head + kGoodStats + "," + kGoodBalance + "}", true},
        {"observed run",
         head + kGoodStats + "," + kGoodBalance + "," + kGoodObserver +
             "}",
         true},
        {"sharded",
         R"({"schema":"bsim-stats-v1","driver":"sharded",)"
         R"("workload":"trace:t.bst","config":"dm-16kB",)" +
             std::string(kGoodStats) + R"(,"shards":[)" + head +
             kGoodStats + "," + kGoodBalance + "}]}",
         true},
        {"not json", "{", false},
        {"wrong schema",
         R"({"schema":"bsim-stats-v2","driver":"trace",)"
         R"("workload":"w","config":"c",)" +
             std::string(kGoodStats) + "," + kGoodBalance + "}",
         false},
        {"bad driver",
         R"({"schema":"bsim-stats-v1","driver":"magic",)"
         R"("workload":"w","config":"c",)" +
             std::string(kGoodStats) + "," + kGoodBalance + "}",
         false},
        {"missing balance", head + kGoodStats + "}", false},
        {"inconsistent counters",
         head +
             R"("stats":{"accesses":10,"hits":9,"misses":2,)"
             R"("missRate":0.2,"readAccesses":5,"readMisses":1,)"
             R"("writeAccesses":5,"writeMisses":1,"fetchAccesses":0,)"
             R"("fetchMisses":0,"writebacks":1,"writethroughs":0,)"
             R"("refills":2},)" +
             kGoodBalance + "}",
         false},
        {"perSet length mismatch",
         head + kGoodStats + "," + kGoodBalance + "," +
             R"("observer":{"perSet":{"lines":3,"accesses":[6,4],)"
             R"("hits":[5,3],"misses":[1,1],"installs":[1,1]},)"
             R"("balanceMetrics":{"maxRefs":6,"meanRefs":5,)"
             R"("maxOverMean":1.2,"cov":0.2,"gini":0.1},)"
             R"("writebacks":1}})",
         false},
        {"shards on a single run",
         head + kGoodStats + "," + kGoodBalance +
             R"(,"shards":[]})",
         false},
        {"sampled run",
         head + kGoodStats + "," + kGoodSample + "}", true},
        {"sampled sharded with merged sample",
         R"({"schema":"bsim-stats-v1","driver":"sharded",)"
         R"("workload":"trace:t.bst","config":"dm-16kB",)" +
             std::string(kGoodStats) + "," + kGoodSample +
             R"(,"shards":[)" + head + kGoodStats + "," + kGoodSample +
             "}]}",
         true},
        {"sample next to balance in a run body",
         head + kGoodStats + "," + kGoodBalance + "," + kGoodSample +
             "}",
         false},
        {"sample missing a key",
         head + kGoodStats + "," +
             R"("sample":{"unitLen":100,"period":1000,"warmup":200,)"
             R"("records":5000,"units":5,"sampledFraction":0.1,)"
             R"("estimate":0.2,"stderr":0.01,"ci95lo":0.18,)"
             R"("ci95hi":0.22}})",
         false},
        {"sample with an extra key",
         head + kGoodStats + "," +
             R"("sample":{"unitLen":100,"period":1000,"warmup":200,)"
             R"("records":5000,"units":5,"sampledFraction":0.1,)"
             R"("estimate":0.2,"stderr":0.01,"ci95lo":0.18,)"
             R"("ci95hi":0.22,"mpki":200,"bonus":1}})",
         false},
        {"sample estimate outside its CI",
         head + kGoodStats + "," +
             R"("sample":{"unitLen":100,"period":1000,"warmup":200,)"
             R"("records":5000,"units":5,"sampledFraction":0.1,)"
             R"("estimate":0.5,"stderr":0.01,"ci95lo":0.18,)"
             R"("ci95hi":0.22,"mpki":500}})",
         false},
    };

    int failures = 0;
    for (const Case &c : cases) {
        std::string err;
        const bool got = validateStatsJson(c.text, &err);
        if (got != c.valid) {
            std::fprintf(stderr,
                         "selftest FAIL: %s: expected %s, got %s%s%s\n",
                         c.name, c.valid ? "valid" : "invalid",
                         got ? "valid" : "invalid",
                         err.empty() ? "" : ": ", err.c_str());
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("stats_json_lint selftest: %zu case(s) ok\n",
                    std::size(cases));
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--selftest")
            return selftest();
        files.push_back(arg);
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: stats_json_lint FILE... | --selftest\n");
        return 2;
    }
    int rc = 0;
    for (const std::string &f : files)
        rc |= lintFile(f);
    return rc;
}
