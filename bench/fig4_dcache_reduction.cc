/**
 * @file
 * Figure 4 reproduction: data-cache miss-rate reductions over the 16 kB
 * direct-mapped baseline for 2/4/8/32-way caches, a 16-entry victim
 * buffer and the B-Cache at MF in {2,4,8,16} with BAS = 8 (LRU), printed
 * as the paper does in CFP2K and CINT2K groups with suite averages.
 *
 * The 26 x 10 (workload, config) cells run on the parallel sweep engine
 * (`--jobs N` / BSIM_JOBS selects the worker count).
 */

#include "bench/bench_json.hh"
#include "bench/bench_util.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main(int argc, char **argv)
{
    banner("fig4_dcache_reduction",
           "Figure 4 (D$ miss-rate reductions, 16 kB)");
    const std::uint64_t n = defaultAccesses(1'000'000);
    const auto configs = figure4Configs(16 * 1024);
    SweepOptions options;
    options.jobs = consumeJobsFlag(argc, argv);
    // --sample U:P[:W] / BSIM_SAMPLE: estimate the whole grid from
    // sampled units (EXPERIMENTS.md "Sampled replay" cookbook).
    const auto sample = consumeSampleFlag(argc, argv);

    const RowSweep sweep = runRows(spec2kNames(), StreamSide::Data,
                                   configs, 16 * 1024, n, options,
                                   sample);

    printReductionTable("SPEC2K Floating Point (CFP2K), D$ reduction %",
                        spec2kFpNames(), configs, sweep.rows);
    printReductionTable("SPEC2K Integer (CINT2K), D$ reduction %",
                        spec2kIntNames(), configs, sweep.rows);
    printSweepSummary(sweep.summary);
    reportSweepPerf("fig4_dcache_reduction", "spec2k-d16k-fig4-grid",
                    sweep.summary);
    return 0;
}
