/**
 * @file
 * Memory-system sensitivity: the Figure 8 IPC conclusions under varied
 * L2 hit latency and main-memory latency. The B-Cache's advantage over
 * the baseline grows with the miss penalty (each removed conflict miss
 * is worth more) — evidence the paper's Table 4 numbers are not a
 * sweet-spot artefact.
 */

#include "bench/bench_util.hh"
#include "common/strings.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("ablation_l2",
           "design study (IPC gains vs L2/memory latency)");
    const std::uint64_t uops = defaultUops(200'000);

    // A representative slice: conflict-heavy, streaming, pointer-chase.
    const char *sample[] = {"equake", "crafty", "twolf", "swim", "mcf",
                            "gcc"};

    Table t({"L2-hit", "mem-lat", "8way IPC-gain%", "B-Cache IPC-gain%",
             "victim16 IPC-gain%"});
    struct Point
    {
        Cycles l2;
        Cycles mem;
    };
    for (const Point pt : {Point{6, 100}, Point{12, 100}, Point{6, 200},
                           Point{12, 300}}) {
        HierarchyParams hp;
        hp.l2HitLatency = pt.l2;
        hp.memLatency = pt.mem;
        RunningStat g8, gbc, gv;
        for (const char *b : sample) {
            const double base =
                runTimed(b, parseCacheSpec("dm:16kB"), uops,
                         0xb5eedULL, hp)
                    .ipc();
            const double w8 =
                runTimed(b, parseCacheSpec("sa:16kB,8w"), uops,
                         0xb5eedULL, hp)
                    .ipc();
            const double bc =
                runTimed(b, parseCacheSpec("bcache:16kB,mf=8,bas=8"), uops,
                         0xb5eedULL, hp)
                    .ipc();
            const double vc =
                runTimed(b, parseCacheSpec("dm:16kB+victim:16"), uops,
                         0xb5eedULL, hp)
                    .ipc();
            g8.add(100.0 * (w8 - base) / base);
            gbc.add(100.0 * (bc - base) / base);
            gv.add(100.0 * (vc - base) / base);
        }
        t.row()
            .cell(strprintf("%llu",
                            static_cast<unsigned long long>(pt.l2)))
            .cell(strprintf("%llu",
                            static_cast<unsigned long long>(pt.mem)))
            .cell(g8.mean(), 1)
            .cell(gbc.mean(), 1)
            .cell(gv.mean(), 1);
    }
    t.print("sample-average IPC improvement over the direct-mapped "
            "baseline (6 benchmarks)");
    return 0;
}
