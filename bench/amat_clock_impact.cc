/**
 * @file
 * The paper's headline argument, quantified: set-associative caches
 * reduce misses but sit on the clock's critical path; the B-Cache gets
 * its reduction at the direct-mapped access time. This harness combines
 * the measured suite miss rates with the logical-effort access-time
 * model into nanosecond AMAT, with and without letting the L1 stretch
 * the cycle.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/amat.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main()
{
    banner("amat_clock_impact",
           "Section 1 synthesis (AMAT with L1 on the critical path)");
    const std::uint64_t n = defaultAccesses(300'000);

    const std::vector<CacheConfig> configs = {
        parseCacheSpec("dm:16kB"),
        parseCacheSpec("sa:16kB,2w"),
        parseCacheSpec("sa:16kB,4w"),
        parseCacheSpec("sa:16kB,8w"),
        parseCacheSpec("dm:16kB+victim:16"),
        parseCacheSpec("bcache:16kB,mf=8,bas=8"),
    };

    // Suite-average D$ miss rate and slow-hit fraction per config.
    std::vector<RunningStat> miss(configs.size()),
        slow(configs.size());
    for (const auto &b : spec2kNames()) {
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const MissRateResult r =
                runMissRate(b, StreamSide::Data, configs[i], n);
            miss[i].add(r.missRate());
            // Victim-buffer hits pay the extra probe cycle.
            slow[i].add(r.stats.hits
                            ? double(r.victimHits) /
                                  double(r.stats.hits)
                            : 0.0);
        }
    }

    Table t({"config", "access-ns", "clock-ns", "miss%", "AMAT-ns",
             "vs-dm%"});
    double dm_amat = 0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const AmatResult r = evaluateAmat(configs[i], miss[i].mean(),
                                          slow[i].mean());
        if (i == 0)
            dm_amat = r.amatNs;
        t.row()
            .cell(configs[i].label)
            .cell(r.accessTimeNs, 3)
            .cell(r.clockNs, 3)
            .cell(100.0 * r.missRate, 2)
            .cell(r.amatNs, 3)
            .cell(100.0 * (r.amatNs - dm_amat) / dm_amat, 1);
    }
    t.print("suite-average D$ AMAT, L1 access time sets the clock "
            "(floor 0.50 ns, miss penalty 8 cycles)");

    std::printf("\nReading: associative caches trade miss rate against "
                "cycle time; the B-Cache's\nmiss-rate win arrives at "
                "the direct-mapped clock, so its AMAT delta is pure "
                "gain.\n");
    return 0;
}
