/**
 * @file
 * Section 6.4 extension: the paper notes that after balancing, the
 * B-Cache still has plenty of less-accessed sets, so leakage techniques
 * (Drowsy Cache, Cache Decay) remain applicable. This harness runs the
 * drowsy estimator on the baseline and the B-Cache and reports the
 * leakage factor and wake-up overhead for both.
 */

#include "bench/bench_util.hh"
#include "power/drowsy.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

namespace {

DrowsyReport
runDrowsy(const std::string &bench, const CacheConfig &cfg,
          std::uint64_t n)
{
    auto cache = cfg.build(cfg.label);
    DrowsyEstimator est(cache->geometry().numLines(), DrowsyParams{});
    cache->setLineObserver(&est);
    SpecWorkload w = makeSpecWorkload(bench);
    for (std::uint64_t i = 0; i < n; ++i)
        cache->access(w.data->next());
    return est.report();
}

} // namespace

int
main()
{
    banner("ablation_drowsy",
           "Section 6.4 extension (drowsy-state leakage compatibility)");
    const std::uint64_t n = defaultAccesses(400'000);

    Table t({"benchmark", "dm-drowsy%", "dm-leak-x", "bc-drowsy%",
             "bc-leak-x", "bc-wake/1k-acc"});
    RunningStat a_dmd, a_dml, a_bcd, a_bcl;
    for (const auto &b : spec2kNames()) {
        const DrowsyReport dm =
            runDrowsy(b, parseCacheSpec("dm:16kB"), n);
        const DrowsyReport bc =
            runDrowsy(b, parseCacheSpec("bcache:16kB,mf=8,bas=8"), n);
        t.row()
            .cell(b)
            .cell(100.0 * dm.drowsyFraction, 1)
            .cell(dm.leakageFactor, 3)
            .cell(100.0 * bc.drowsyFraction, 1)
            .cell(bc.leakageFactor, 3)
            .cell(1000.0 * double(bc.wakeups) / double(bc.ticks), 2);
        a_dmd.add(100.0 * dm.drowsyFraction);
        a_dml.add(dm.leakageFactor);
        a_bcd.add(100.0 * bc.drowsyFraction);
        a_bcl.add(bc.leakageFactor);
    }
    t.row()
        .cell("Ave")
        .cell(a_dmd.mean(), 1)
        .cell(a_dml.mean(), 3)
        .cell(a_bcd.mean(), 1)
        .cell(a_bcl.mean(), 3)
        .cell("");
    t.print("drowsy-window leakage on the 16kB D$ (window 2000 "
            "accesses, drowsy leak 0.1x)");
    return 0;
}
