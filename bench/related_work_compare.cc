/**
 * @file
 * Sections 6.6/6.7/7 comparison: suite-average miss-rate reductions of
 * the B-Cache against the other direct-mapped conflict-miss techniques
 * (victim buffer, column-associative, 2-way skewed-associative) and the
 * highly-associative CAM-tag cache (HAC), together with each technique's
 * hit-latency behaviour — the B-Cache's differentiator is one-cycle hits
 * for ALL hits at a direct-mapped access time.
 *
 * The (D$ suite + I$ suite) x 11 (workload, config) cells run on the
 * parallel sweep engine (`--jobs N` / BSIM_JOBS selects the worker
 * count); every technique's access loop is the shared tag-array engine
 * driven in batched mode.
 */

#include "bench/bench_json.hh"
#include "bench/bench_util.hh"
#include "workload/spec2k.hh"

using namespace bsim;
using namespace bsim::bench;

int
main(int argc, char **argv)
{
    banner("related_work_compare",
           "Sections 6.6/6.7/7 (victim, column-assoc, skewed, HAC)");
    const std::uint64_t n = defaultAccesses(400'000);

    // The last entry is the paper's Section 6.7 suggestion: an "improved
    // HAC" — the HAC's cluster structure (BAS = 32) driven by a short
    // B-Cache-style PD (MF = 64 -> 11 CAM bits) instead of the HAC's
    // full 26-bit CAM tag, trading a few points of reduction for less
    // than half the CAM width (area, search energy and match delay).
    const std::vector<CacheConfig> configs = {
        parseCacheSpec("dm:16kB+victim:16"),
        parseCacheSpec("column:16kB"),
        parseCacheSpec("xor:16kB"),
        parseCacheSpec("skew:16kB"),
        parseCacheSpec("hac:16kB"),
        parseCacheSpec("pad:16kB,2w,bits=5"),
        parseCacheSpec("sa:16kB,4w"),
        parseCacheSpec("sa:16kB,8w"),
        parseCacheSpec("bcache:16kB,mf=8,bas=8"),
        parseCacheSpec("bcache:16kB,mf=64,bas=32"),
    };
    const char *latency_note[] = {
        "+1 cycle on buffer hits",
        "+1 cycle on rehash hits, swaps",
        "1 cycle, XOR stage before decode",
        "longer access (2 indexed banks)",
        "longer access (serial decode+CAM)",
        "fast cycle + 2nd on mispredict (7.2)",
        "longer access (way mux)",
        "longer access (way mux)",
        "1 cycle, DM access time",
        "1 cycle, 11-bit PD (improved HAC, 6.7)",
    };

    SweepOptions options;
    options.jobs = consumeJobsFlag(argc, argv);

    const RowSweep sweep_d = runRows(spec2kNames(), StreamSide::Data,
                                     configs, 16 * 1024, n, options);
    const RowSweep sweep_i =
        runRows(spec2kIcacheReportedNames(), StreamSide::Inst, configs,
                16 * 1024, n, options);

    RunningStat red_d[10], red_i[10];
    for (const auto &b : spec2kNames())
        for (std::size_t i = 0; i < configs.size(); ++i)
            red_d[i].add(
                reductionOf(sweep_d.rows.at(b), configs[i].label));
    for (const auto &b : spec2kIcacheReportedNames())
        for (std::size_t i = 0; i < configs.size(); ++i)
            red_i[i].add(
                reductionOf(sweep_i.rows.at(b), configs[i].label));

    Table t({"technique", "D$ red%", "I$ red%", "hit latency"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        t.row()
            .cell(configs[i].label)
            .cell(red_d[i].mean(), 1)
            .cell(red_i[i].mean(), 1)
            .cell(latency_note[i]);
    }
    t.print("suite-average miss-rate reduction over the 16kB "
            "direct-mapped baseline");

    SweepSummary summary = sweep_d.summary;
    summary.merge(sweep_i.summary);
    printSweepSummary(summary);
    reportSweepPerf("related_work_compare", "spec2k-16k-related-work",
                    summary);
    return 0;
}
