/**
 * @file
 * Machine-readable perf telemetry: every harness (and the perf gate in
 * tests/) appends one record per run to BENCH_perf.json, a JSON array of
 *
 *   {"bench": ..., "config": ..., "accesses_per_sec": ..., "wall_s": ...,
 *    "jobs": ..., "git_rev": ...}
 *
 * objects, giving the repo a perf trajectory across commits (see
 * EXPERIMENTS.md "Perf trajectory"). Appends are atomic (write-temp +
 * rename) and never clobber data: a malformed existing file is
 * quarantined to <path>.corrupt and a fresh array started.
 *
 * Knobs: BSIM_BENCH_JSON overrides the output path, BSIM_GIT_REV the
 * recorded revision (otherwise `git rev-parse --short HEAD`).
 */

#ifndef BSIM_BENCH_BENCH_JSON_HH
#define BSIM_BENCH_BENCH_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace bsim {
namespace bench {

/** One BENCH_perf.json entry. */
struct PerfRecord
{
    std::string bench;          ///< harness name, e.g. "fig3_mf_sweep"
    std::string config;         ///< cell/config label within the harness
    double accessesPerSec = 0.0;
    double wallSeconds = 0.0;
    unsigned jobs = 1;          ///< worker threads the run used
    std::string gitRev;         ///< filled from currentGitRev() if empty
};

/** Output path: BSIM_BENCH_JSON env, else "BENCH_perf.json" in cwd. */
std::string benchJsonPath();

/** BSIM_GIT_REV env, else `git rev-parse --short HEAD`, else "unknown". */
std::string currentGitRev();

/**
 * Append @p records to the perf log at @p path (empty = benchJsonPath()).
 * Returns "" on success, otherwise a diagnostic; a malformed existing
 * file is moved aside to <path>.corrupt rather than overwritten.
 */
std::string appendPerfRecords(const std::vector<PerfRecord> &records,
                              const std::string &path = "");

/** Single-record convenience wrapper around appendPerfRecords(). */
std::string appendPerfRecord(const PerfRecord &record,
                             const std::string &path = "");

/**
 * Append one record built from a sweep's aggregate metrics (the
 * harnesses call this right after printSweepSummary()). Failures are
 * reported on stderr but never abort the harness.
 */
void reportSweepPerf(const std::string &bench, const std::string &config,
                     const SweepSummary &summary);

/**
 * Schema check used by the lint tool and the unit tests: @p text must be
 * a JSON array of objects carrying exactly the PerfRecord keys with the
 * right types. Returns the record count, or nullopt with @p error set.
 */
std::optional<std::size_t> validatePerfJson(const std::string &text,
                                            std::string *error);

} // namespace bench
} // namespace bsim

#endif // BSIM_BENCH_BENCH_JSON_HH
